"""The simulated disk copy of the database.

The paper's MM-DBMS keeps a full copy of the database on disk (Figure 2);
partitions — "on the order of one or two disk tracks" — are the unit of
both recovery and disk I/O.  This module simulates that disk as a mapping
from (relation, partition id) to a serialized partition image, counting
reads and writes so the recovery benchmarks can report I/O in the paper's
own unit.

Every stored image is CRC32-framed (:mod:`repro.recovery.framing`), so
torn writes and corruption surface as typed
:class:`~repro.errors.TornWriteError` /
:class:`~repro.errors.CorruptImageError` at the read boundary instead of
unpickling crashes deep inside restart.  The ``disk.read`` and
``disk.write`` fault points inject exactly those failure modes on
demand; byte accounting stays in *payload* bytes, so framing changes no
benchmark numbers.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.errors import RecoveryError
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from repro.recovery.framing import HEADER_SIZE, frame, unframe

PartitionKey = Tuple[str, int]


def _checksum_metric(device: str, kind: str) -> None:
    """Count one detected integrity failure when observability is on."""
    obs = obs_runtime.active()
    if obs is not None:
        obs.metric_inc("checksum_failures_total", device=device, kind=kind)


class SimulatedDisk:
    """A block store of checksum-framed partition images with I/O
    accounting."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._images: Dict[PartitionKey, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def write_partition(
        self, relation: str, partition_id: int, image: bytes
    ) -> None:
        """Store (overwrite) one partition image.

        The image is framed with its length and CRC32.  The
        ``disk.write`` fault point can tear the write (persist only a
        prefix of the frame) or corrupt it (flip one payload byte) —
        both silently, discovered at the next read, exactly like the
        real failure modes they simulate.
        """
        framed = frame(image)
        injector = fault_runtime.active()
        if injector is not None:
            action = injector.fire(
                "disk.write", relation=relation, partition=partition_id
            )
            if action == "torn":
                # Keep the header plus half the payload: long enough to
                # parse the declared length, short enough to be torn.
                framed = framed[: HEADER_SIZE + max(0, len(image) // 2)]
            elif action == "corrupt":
                corrupt = bytearray(framed)
                corrupt[-1] ^= 0xFF
                framed = bytes(corrupt)
        with self._mutex:
            self._images[(relation, partition_id)] = framed
            self.writes += 1
            self.bytes_written += len(image)

    def read_partition(self, relation: str, partition_id: int) -> bytes:
        """Fetch one partition image; raises if absent or damaged.

        Integrity failures raise the typed frame errors.  The
        ``disk.read`` fault point's ``corrupt`` action flips a byte in
        the *returned copy only* — a transient read fault (bad DMA, bit
        flip on the bus) that a retry of the read heals.
        """
        with self._mutex:
            try:
                framed = self._images[(relation, partition_id)]
            except KeyError:
                raise RecoveryError(
                    f"disk copy has no image for {relation}[{partition_id}]"
                ) from None
            self.reads += 1
        injector = fault_runtime.active()
        if injector is not None:
            action = injector.fire(
                "disk.read", relation=relation, partition=partition_id
            )
            if action == "corrupt" and len(framed) > HEADER_SIZE:
                transient = bytearray(framed)
                transient[-1] ^= 0xFF
                framed = bytes(transient)
        context = f"{relation}[{partition_id}]"
        try:
            image = unframe(framed, context)
        except RecoveryError as exc:
            _checksum_metric("disk", type(exc).__name__)
            raise
        with self._mutex:
            self.bytes_read += len(image)
        return image

    def has_partition(self, relation: str, partition_id: int) -> bool:
        """Whether an image exists for the partition."""
        with self._mutex:
            return (relation, partition_id) in self._images

    def delete_partition(self, relation: str, partition_id: int) -> None:
        """Drop one image (relation drop)."""
        with self._mutex:
            self._images.pop((relation, partition_id), None)

    def partition_keys(self) -> List[PartitionKey]:
        """All stored (relation, partition id) keys."""
        with self._mutex:
            return list(self._images)

    def total_bytes(self) -> int:
        """Total payload size of the disk copy (frame headers excluded)."""
        with self._mutex:
            return sum(
                max(0, len(img) - HEADER_SIZE)
                for img in self._images.values()
            )

    def damage_partition(
        self, relation: str, partition_id: int, mode: str = "corrupt"
    ) -> None:
        """Damage one *stored* image in place (test/chaos helper).

        ``mode="corrupt"`` flips a payload byte; ``mode="torn"``
        truncates the frame mid-payload.  Unlike the ``disk.read``
        transient fault, this damage persists until the partition is
        rewritten — the shape of real media decay.
        """
        with self._mutex:
            key = (relation, partition_id)
            try:
                framed = self._images[key]
            except KeyError:
                raise RecoveryError(
                    f"disk copy has no image for {relation}[{partition_id}]"
                ) from None
            if mode == "torn":
                self._images[key] = framed[
                    : HEADER_SIZE + max(0, (len(framed) - HEADER_SIZE) // 2)
                ]
            else:
                damaged = bytearray(framed)
                damaged[-1] ^= 0xFF
                self._images[key] = bytes(damaged)

    def reset_counters(self) -> None:
        """Zero the I/O counters (benchmark hygiene)."""
        with self._mutex:
            self.reads = 0
            self.writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
