"""The simulated disk copy of the database.

The paper's MM-DBMS keeps a full copy of the database on disk (Figure 2);
partitions — "on the order of one or two disk tracks" — are the unit of
both recovery and disk I/O.  This module simulates that disk as a mapping
from (relation, partition id) to a serialized partition image, counting
reads and writes so the recovery benchmarks can report I/O in the paper's
own unit.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import RecoveryError

PartitionKey = Tuple[str, int]


class SimulatedDisk:
    """A block store of partition images with I/O accounting."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._images: Dict[PartitionKey, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def write_partition(
        self, relation: str, partition_id: int, image: bytes
    ) -> None:
        """Store (overwrite) one partition image."""
        with self._mutex:
            self._images[(relation, partition_id)] = image
            self.writes += 1
            self.bytes_written += len(image)

    def read_partition(self, relation: str, partition_id: int) -> bytes:
        """Fetch one partition image; raises if absent."""
        with self._mutex:
            try:
                image = self._images[(relation, partition_id)]
            except KeyError:
                raise RecoveryError(
                    f"disk copy has no image for {relation}[{partition_id}]"
                ) from None
            self.reads += 1
            self.bytes_read += len(image)
            return image

    def has_partition(self, relation: str, partition_id: int) -> bool:
        """Whether an image exists for the partition."""
        with self._mutex:
            return (relation, partition_id) in self._images

    def delete_partition(self, relation: str, partition_id: int) -> None:
        """Drop one image (relation drop)."""
        with self._mutex:
            self._images.pop((relation, partition_id), None)

    def partition_keys(self) -> List[PartitionKey]:
        """All stored (relation, partition id) keys."""
        with self._mutex:
            return list(self._images)

    def total_bytes(self) -> int:
        """Total size of the disk copy."""
        with self._mutex:
            return sum(len(img) for img in self._images.values())

    def reset_counters(self) -> None:
        """Zero the I/O counters (benchmark hygiene)."""
        with self._mutex:
            self.reads = 0
            self.writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
