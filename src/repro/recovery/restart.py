"""Crash restart: working set first, background reload after.

"Given the size of memory, applications that depend on the DBMS will
probably not be able to afford to wait for the entire database to be
reloaded ...  we are developing an approach that will allow normal
processing to continue immediately ...  Once the working set has been read
in, the MM-DBMS should be able to run at close to its normal rate while
the remainder of the database is read in by a background process."

Restart is also where storage integrity faults surface: partition images
are CRC32-framed on the simulated disk, so a damaged image raises a
typed :class:`~repro.errors.CorruptImageError` /
:class:`~repro.errors.TornWriteError` at the read boundary.  Two
degraded paths absorb them:

* **transient-read retry** — a read whose *returned* bytes fail the
  checksum (the stored image is fine) heals on a bounded re-read;
* **partial restart** — ``restart(partial=True)`` quarantines partitions
  whose *stored* image is damaged into
  :attr:`RestartStats.quarantined` and brings the rest of the database
  up consistent, instead of the all-or-nothing failure of the default
  mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    CorruptImageError,
    CorruptLogRecordError,
    RecoveryError,
)
from repro.fault import runtime as fault_runtime
from repro.fault.backoff import NO_BACKOFF, BackoffPolicy
from repro.obs import runtime as obs_runtime
from repro.recovery.disk import SimulatedDisk
from repro.recovery.log import StableLogBuffer
from repro.recovery.log_device import LogDevice
from repro.storage.catalog import Catalog

PartitionKey = Tuple[str, int]

#: Total read attempts per partition during restart: the first read plus
#: one retry, which heals any single transient read fault.
DEFAULT_READ_ATTEMPTS = 2


def _metric(name: str, amount: int = 1, **labels) -> None:
    """Bump a recovery metric when observability is active."""
    if amount:
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(name, amount, **labels)


@dataclass
class RestartStats:
    """What one restart did, in the paper's units (partitions = tracks)."""

    working_set_partitions: int = 0
    background_partitions: int = 0
    log_records_merged: int = 0
    #: Reads retried after a transient integrity failure.
    read_retries: int = 0
    #: Partitions whose stored image stayed damaged after retries, with
    #: the error that condemned them (``partial=True`` restarts only).
    quarantined: List[Tuple[PartitionKey, str]] = field(default_factory=list)

    @property
    def total_partitions(self) -> int:
        """All partitions reloaded."""
        return self.working_set_partitions + self.background_partitions

    @property
    def fully_recovered(self) -> bool:
        """Whether every partition on disk made it back into memory."""
        return not self.quarantined

    def quarantine_report(self) -> Dict[str, List[Tuple[int, str]]]:
        """Quarantined partitions grouped per relation — the recoverable
        to-do list a partial restart hands the operator."""
        report: Dict[str, List[Tuple[int, str]]] = {}
        for (relation, partition_id), reason in self.quarantined:
            report.setdefault(relation, []).append((partition_id, reason))
        return report


class RecoveryManager:
    """Checkpointing, crash simulation, and two-phase restart."""

    def __init__(
        self,
        catalog: Catalog,
        disk: SimulatedDisk = None,
        stable_log: StableLogBuffer = None,
        read_attempts: int = DEFAULT_READ_ATTEMPTS,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.catalog = catalog
        self.disk = disk if disk is not None else SimulatedDisk()
        self.stable_log = (
            stable_log if stable_log is not None else StableLogBuffer()
        )
        self.log_device = LogDevice(self.disk, self.stable_log)
        self.read_attempts = max(1, int(read_attempts))
        #: Slept between transient-read retries.  NO_BACKOFF (the
        #: default) retries immediately, preserving the historical
        #: fixed-no-delay behaviour; ``db.configure_faults(backoff=...)``
        #: installs a shared exponential schedule here.
        self.backoff = backoff if backoff is not None else NO_BACKOFF
        self._pending_background: List[PartitionKey] = []
        #: Whether the background reload inherits partial semantics.
        self._partial = False
        #: Stats object background reload keeps appending to.
        self._last_stats: Optional[RestartStats] = None

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def checkpoint_partition(self, relation_name: str, partition_id: int) -> None:
        """Write one partition's current image to the disk copy.

        Committed records still queued for this partition are discarded:
        the fresh image already contains their effects, and replaying
        them on top of it would corrupt the copy.
        """
        relation = self.catalog.relation(relation_name)
        partition = relation.partition(partition_id)
        self.log_device.absorb()
        self.disk.write_partition(
            relation_name, partition_id, partition.to_bytes()
        )
        self.log_device.discard_pending(relation_name, partition_id)

    def checkpoint_all(self) -> int:
        """Full checkpoint: every partition of every relation.

        Returns the number of partitions written.  New partitions created
        since the last checkpoint get their base image here; the engine
        also checkpoints each new partition eagerly so that log replay
        always has a base image.

        The ``checkpoint.partition`` fault point fires before each
        partition write — an injected error models a crash mid-checkpoint
        with some partitions freshly imaged and some not.  That window is
        safe by construction: a partition is only imaged *atomically
        with* discarding its pending records, so every partition either
        has (new image, no pending) or (old image, pending records), and
        restart merges both shapes to the same committed state.
        """
        self.log_device.absorb()
        injector = fault_runtime.active()
        written = 0
        for relation_name, partition in self.catalog.all_partitions():
            if injector is not None:
                injector.fire(
                    "checkpoint.partition",
                    relation=relation_name,
                    partition=partition.id,
                )
            self.disk.write_partition(
                relation_name, partition.id, partition.to_bytes()
            )
            self.log_device.discard_pending(relation_name, partition.id)
            written += 1
        return written

    # ------------------------------------------------------------------ #
    # crash + restart
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Simulate loss of main memory.

        Relations lose their partitions and indexes; the disk copy, the
        stable log buffer (battery-backed), and the log device's
        change-accumulation log survive.
        """
        self.stable_log.survive_crash()
        self.log_device.survive_crash()
        for relation in self.catalog:
            relation._partitions.clear()
            relation._count = 0
            # The whole memory image is gone; per-partition quarantine
            # marks from an earlier partial restart are moot.
            relation.clear_quarantined()

    def restart(
        self,
        working_set: Optional[Sequence[PartitionKey]] = None,
        partial: bool = False,
    ) -> RestartStats:
        """Reload the working set and queue the rest for background load.

        ``working_set`` lists (relation, partition id) pairs the current
        transactions need; None means "everything now".  After this
        returns, working-set relations are usable (indexes rebuilt);
        call :meth:`background_reload_step` until it returns 0 to finish.

        ``partial=True`` keeps going when a partition's stored image is
        damaged: the partition is quarantined into
        :attr:`RestartStats.quarantined` (and the per-relation
        :meth:`RestartStats.quarantine_report`), and every healthy
        partition comes up consistent.  The default re-raises the first
        integrity error, preserving all-or-nothing semantics.
        """
        # Anything still sitting committed-but-undrained moves to the
        # change-accumulation log first.
        self.log_device.absorb()
        stats = RestartStats()
        self._partial = partial
        self._last_stats = stats
        all_keys = self.disk.partition_keys()
        if working_set is None:
            wanted: List[PartitionKey] = list(all_keys)
        else:
            wanted = [key for key in working_set if key in set(all_keys)]
            missing = set(working_set) - set(all_keys)
            if missing:
                raise RecoveryError(
                    f"working set names unknown partitions: {sorted(missing)}"
                )
        loaded: Set[PartitionKey] = set()
        for relation_name, partition_id in wanted:
            if self._reload_one(relation_name, partition_id, stats):
                stats.working_set_partitions += 1
                loaded.add((relation_name, partition_id))
        skip = loaded | {key for key, __ in stats.quarantined}
        self._pending_background = [
            key for key in all_keys if key not in skip
        ]
        # Indexes must reflect whatever is in memory so the working-set
        # relations are immediately queryable.
        self._rebuild_touched_indexes(loaded)
        return stats

    def _reload_one(
        self,
        relation_name: str,
        partition_id: int,
        stats: RestartStats,
    ) -> bool:
        """Reload one partition; False when it had to be quarantined.

        Integrity failures are retried up to :attr:`read_attempts` total
        reads — a *transient* read fault (the stored image is fine, the
        returned bytes were damaged in flight) heals on the re-read.  A
        persistently damaged image either quarantines (partial mode) or
        re-raises.
        """
        relation = self.catalog.relation(relation_name)
        pending = len(self.log_device.pending_for(relation_name, partition_id))
        last_error: Optional[RecoveryError] = None
        for attempt in range(self.read_attempts):
            try:
                partition = self.log_device.load_partition_with_merge(
                    relation_name, partition_id
                )
                break
            except (CorruptImageError, CorruptLogRecordError) as exc:
                # Image damage may be transient (a bad read) and is
                # worth the re-read; a corrupt log record fails the
                # retry deterministically and lands in quarantine.
                last_error = exc
                if attempt + 1 < self.read_attempts:
                    stats.read_retries += 1
                    _metric(
                        "recovery_read_retries_total",
                        relation=relation_name,
                    )
                    self.backoff.sleep(attempt)
        else:
            if not self._partial:
                raise last_error
            stats.quarantined.append(
                ((relation_name, partition_id), str(last_error))
            )
            relation.mark_quarantined(partition_id, str(last_error))
            _metric(
                "recovery_quarantined_partitions_total",
                relation=relation_name,
            )
            return False
        relation.adopt_partition(partition)
        stats.log_records_merged += pending
        return True

    def _rebuild_touched_indexes(self, keys: Set[PartitionKey]) -> None:
        touched_relations = {name for name, __ in keys}
        for name in touched_relations:
            self.catalog.relation(name).rebuild_indexes()

    def background_reload_step(self, batch: int = 1) -> int:
        """Reload up to ``batch`` remaining partitions ("read in by a
        background process").  Returns how many were loaded; 0 when done.

        Inherits the partial/all-or-nothing mode of the :meth:`restart`
        that queued the work, quarantining into the same stats object.
        """
        stats = (
            self._last_stats if self._last_stats is not None else RestartStats()
        )
        loaded: Set[PartitionKey] = set()
        count = 0
        for __ in range(batch):
            if not self._pending_background:
                break
            relation_name, partition_id = self._pending_background.pop(0)
            if self._reload_one(relation_name, partition_id, stats):
                stats.background_partitions += 1
                loaded.add((relation_name, partition_id))
                count += 1
        if loaded:
            self._rebuild_touched_indexes(loaded)
        return count

    @property
    def background_remaining(self) -> int:
        """Partitions still queued for background reload."""
        return len(self._pending_background)

    @property
    def last_restart_stats(self) -> Optional[RestartStats]:
        """The stats of the most recent restart (still accumulating
        while the background reload drains), or None."""
        return self._last_stats

    def finish_background_reload(self) -> int:
        """Drain the background queue completely."""
        total = 0
        while True:
            step = self.background_reload_step(batch=16)
            if step == 0:
                return total
            total += step
