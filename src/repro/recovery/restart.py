"""Crash restart: working set first, background reload after.

"Given the size of memory, applications that depend on the DBMS will
probably not be able to afford to wait for the entire database to be
reloaded ...  we are developing an approach that will allow normal
processing to continue immediately ...  Once the working set has been read
in, the MM-DBMS should be able to run at close to its normal rate while
the remainder of the database is read in by a background process."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RecoveryError
from repro.recovery.disk import SimulatedDisk
from repro.recovery.log import StableLogBuffer
from repro.recovery.log_device import LogDevice
from repro.storage.catalog import Catalog

PartitionKey = Tuple[str, int]


@dataclass
class RestartStats:
    """What one restart did, in the paper's units (partitions = tracks)."""

    working_set_partitions: int = 0
    background_partitions: int = 0
    log_records_merged: int = 0

    @property
    def total_partitions(self) -> int:
        """All partitions reloaded."""
        return self.working_set_partitions + self.background_partitions


class RecoveryManager:
    """Checkpointing, crash simulation, and two-phase restart."""

    def __init__(
        self,
        catalog: Catalog,
        disk: SimulatedDisk = None,
        stable_log: StableLogBuffer = None,
    ) -> None:
        self.catalog = catalog
        self.disk = disk if disk is not None else SimulatedDisk()
        self.stable_log = (
            stable_log if stable_log is not None else StableLogBuffer()
        )
        self.log_device = LogDevice(self.disk, self.stable_log)
        self._pending_background: List[PartitionKey] = []

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def checkpoint_partition(self, relation_name: str, partition_id: int) -> None:
        """Write one partition's current image to the disk copy.

        Committed records still queued for this partition are discarded:
        the fresh image already contains their effects, and replaying
        them on top of it would corrupt the copy.
        """
        relation = self.catalog.relation(relation_name)
        partition = relation.partition(partition_id)
        self.log_device.absorb()
        self.disk.write_partition(
            relation_name, partition_id, partition.to_bytes()
        )
        self.log_device.discard_pending(relation_name, partition_id)

    def checkpoint_all(self) -> int:
        """Full checkpoint: every partition of every relation.

        Returns the number of partitions written.  New partitions created
        since the last checkpoint get their base image here; the engine
        also checkpoints each new partition eagerly so that log replay
        always has a base image.
        """
        self.log_device.absorb()
        written = 0
        for relation_name, partition in self.catalog.all_partitions():
            self.disk.write_partition(
                relation_name, partition.id, partition.to_bytes()
            )
            self.log_device.discard_pending(relation_name, partition.id)
            written += 1
        return written

    # ------------------------------------------------------------------ #
    # crash + restart
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Simulate loss of main memory.

        Relations lose their partitions and indexes; the disk copy, the
        stable log buffer (battery-backed), and the log device's
        change-accumulation log survive.
        """
        self.stable_log.survive_crash()
        self.log_device.survive_crash()
        for relation in self.catalog:
            relation._partitions.clear()
            relation._count = 0

    def restart(
        self,
        working_set: Optional[Sequence[PartitionKey]] = None,
    ) -> RestartStats:
        """Reload the working set and queue the rest for background load.

        ``working_set`` lists (relation, partition id) pairs the current
        transactions need; None means "everything now".  After this
        returns, working-set relations are usable (indexes rebuilt);
        call :meth:`background_reload_step` until it returns 0 to finish.
        """
        # Anything still sitting committed-but-undrained moves to the
        # change-accumulation log first.
        self.log_device.absorb()
        stats = RestartStats()
        all_keys = self.disk.partition_keys()
        if working_set is None:
            wanted: List[PartitionKey] = list(all_keys)
        else:
            wanted = [key for key in working_set if key in set(all_keys)]
            missing = set(working_set) - set(all_keys)
            if missing:
                raise RecoveryError(
                    f"working set names unknown partitions: {sorted(missing)}"
                )
        loaded: Set[PartitionKey] = set()
        for relation_name, partition_id in wanted:
            merged = self._reload_one(relation_name, partition_id)
            stats.working_set_partitions += 1
            stats.log_records_merged += merged
            loaded.add((relation_name, partition_id))
        self._pending_background = [
            key for key in all_keys if key not in loaded
        ]
        # Indexes must reflect whatever is in memory so the working-set
        # relations are immediately queryable.
        self._rebuild_touched_indexes(loaded)
        return stats

    def _reload_one(self, relation_name: str, partition_id: int) -> int:
        relation = self.catalog.relation(relation_name)
        pending = len(self.log_device.pending_for(relation_name, partition_id))
        partition = self.log_device.load_partition_with_merge(
            relation_name, partition_id
        )
        relation.adopt_partition(partition)
        return pending

    def _rebuild_touched_indexes(self, keys: Set[PartitionKey]) -> None:
        touched_relations = {name for name, __ in keys}
        for name in touched_relations:
            self.catalog.relation(name).rebuild_indexes()

    def background_reload_step(self, batch: int = 1) -> int:
        """Reload up to ``batch`` remaining partitions ("read in by a
        background process").  Returns how many were loaded; 0 when done.
        """
        loaded: Set[PartitionKey] = set()
        for __ in range(batch):
            if not self._pending_background:
                break
            relation_name, partition_id = self._pending_background.pop(0)
            self._reload_one(relation_name, partition_id)
            loaded.add((relation_name, partition_id))
        if loaded:
            self._rebuild_touched_indexes(loaded)
        return len(loaded)

    @property
    def background_remaining(self) -> int:
        """Partitions still queued for background reload."""
        return len(self._pending_background)

    def finish_background_reload(self) -> int:
        """Drain the background queue completely."""
        total = 0
        while True:
            step = self.background_reload_step(batch=16)
            if step == 0:
                return total
            total += step
