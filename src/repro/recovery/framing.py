"""CRC32 framing for partition images on the simulated disk.

The paper makes the partition "the unit of both recovery and disk I/O";
this module gives that unit an integrity boundary.  Every image stored
by :class:`~repro.recovery.disk.SimulatedDisk` is wrapped in a 12-byte
frame — magic, payload length, CRC32 of the payload — so that the two
classic disk failure modes surface as *typed* errors at read time
instead of unpickling crashes deep inside restart:

* a **torn write** (the stored bytes are shorter than the header
  declares — the write was interrupted mid-partition) raises
  :class:`~repro.errors.TornWriteError`;
* **corruption** (bad magic, or a payload whose CRC32 no longer matches
  the header) raises :class:`~repro.errors.CorruptImageError`.

Framing is internal to the disk: writers hand in raw payloads, readers
get raw payloads back, and the I/O byte accounting stays in payload
bytes so the paper-unit benchmarks are unchanged.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import CorruptImageError, TornWriteError

#: Frame layout: 4-byte magic, 4-byte big-endian payload length,
#: 4-byte big-endian CRC32 of the payload.
MAGIC = b"RPF1"
_HEADER = struct.Struct(">4sII")
HEADER_SIZE = _HEADER.size


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a checksummed frame."""
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def unframe(data: bytes, context: str = "image") -> bytes:
    """Validate a frame and return its payload.

    Raises :class:`TornWriteError` for truncated frames and
    :class:`CorruptImageError` for bad magic or checksum mismatches.
    ``context`` names the image in the error message.
    """
    if len(data) < HEADER_SIZE:
        raise TornWriteError(
            f"torn write: {context} holds {len(data)} bytes, "
            f"shorter than the {HEADER_SIZE}-byte frame header"
        )
    magic, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CorruptImageError(
            f"corrupt frame: {context} has bad magic {magic!r}"
        )
    payload = data[HEADER_SIZE:]
    if len(payload) < length:
        raise TornWriteError(
            f"torn write: {context} declares {length} payload bytes "
            f"but only {len(payload)} were stored"
        )
    if len(payload) > length:
        raise CorruptImageError(
            f"corrupt frame: {context} declares {length} payload bytes "
            f"but {len(payload)} are stored"
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise CorruptImageError(
            f"checksum mismatch: {context} stored crc32=0x{crc:08x}, "
            f"payload hashes to 0x{actual:08x}"
        )
    return payload
