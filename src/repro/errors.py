"""Exception hierarchy for the MM-DBMS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition or schema lookup is invalid."""


class StorageError(ReproError):
    """A storage-layer operation failed (partition, heap, tuple access)."""


class PartitionFullError(StorageError):
    """A partition has no free slot for a new tuple."""


class HeapOverflowError(StorageError):
    """A partition's variable-length heap has no room for a value."""


class DanglingPointerError(StorageError):
    """A :class:`~repro.storage.tuples.TupleRef` points at a deleted slot."""


class IndexError_(ReproError):
    """Base class for index-structure errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class DuplicateKeyError(IndexError_):
    """An insert violated a unique-index constraint."""


class KeyNotFoundError(IndexError_):
    """A delete or lookup referenced a key that is not in the index."""


class UnsupportedOperationError(IndexError_):
    """The index does not support the requested operation.

    For example, range scans on hash indexes, or updates on a read-only
    array index used during a merge join.
    """


class ConfigError(ReproError, ValueError):
    """An engine/runtime configuration value is invalid.

    Raised at configuration time (``db.configure_execution`` and the
    config dataclasses behind it) so that a bad engine name or a
    nonsensical batch/worker count fails fast instead of deep inside
    the engine.  Also a :class:`ValueError` so callers that predate the
    dedicated class keep working.
    """


class QueryError(ReproError):
    """A query-processing operation was mis-specified."""


class PlanError(QueryError):
    """A query plan is structurally invalid."""


class TransactionError(ReproError):
    """A transaction-layer failure."""


class DeadlockError(TransactionError):
    """The lock manager detected a deadlock; the transaction must abort."""


class LockTimeoutError(TransactionError):
    """A lock request could not be granted within its bound."""


class TransactionAborted(TransactionError):
    """Operation attempted on a transaction that has already aborted."""


class RecoveryError(ReproError):
    """The recovery subsystem failed to restore a consistent database."""


class CorruptImageError(RecoveryError):
    """A partition image failed its CRC32 integrity check.

    Raised at the I/O boundary (:class:`~repro.recovery.disk.SimulatedDisk`
    reads and :meth:`~repro.storage.partition.Partition.from_bytes`), so
    corruption surfaces as a typed, catchable error instead of an
    unpickling crash deep inside restart.
    """


class TornWriteError(CorruptImageError):
    """A partition image is shorter than its frame header declares.

    The signature of a write interrupted mid-partition — the paper's
    partition is "the unit of both recovery and disk I/O", so a torn
    write tears exactly one partition image.
    """


class CorruptLogRecordError(RecoveryError):
    """A log record's content no longer matches its append-time checksum."""


class ShardUnavailableError(ReproError):
    """A statement routed to a quarantined or failed partition.

    Raised at the relation's partition-lookup boundary when a partial
    restart quarantined the partition's damaged image — the typed,
    retryable signal ("heal or re-restart, then retry") instead of a
    generic :class:`KeyError` / :class:`CorruptImageError` surfacing
    from deep inside recovery.  Carries the relation, partition id, and
    the reason the partition was condemned.
    """

    def __init__(self, relation: str, partition_id: int, reason: str) -> None:
        super().__init__(
            f"partition {relation}[{partition_id}] is unavailable "
            f"(quarantined: {reason}); heal it from a replica or finish "
            f"recovery before retrying"
        )
        self.relation = relation
        self.partition_id = partition_id
        self.reason = reason


class ReplicationError(ReproError):
    """A replication-layer operation failed (shipping, apply, failover)."""


class CorruptBatchError(ReplicationError):
    """A shipped record batch failed its frame or record checksum.

    The replica rejects the whole batch — nothing half-applies — and the
    shipper re-encodes and re-ships from its outbox.
    """


class ReplicationEpochError(ReplicationError):
    """A batch carried a stale replication epoch (fencing).

    After a promotion the epoch advances; a batch from a demoted primary
    still shipping under the old epoch is rejected, never applied.
    """


class ReplicaUnavailableError(ReplicationError):
    """No replica is configured, or its channel is down."""


class InjectedFaultError(ReproError):
    """A fault deliberately raised by the fault-injection subsystem.

    Carries the fault ``point`` (e.g. ``"disk.read"``) and ``action``
    so handlers and tests can tell injected failures from organic ones.
    """

    def __init__(self, point: str, action: str = "error") -> None:
        super().__init__(f"injected fault at {point!r} (action={action})")
        self.point = point
        self.action = action

    def __reduce__(self):
        # Keep point/action intact across the worker-to-parent pickle
        # round-trip of ProcessPoolExecutor results.
        return (type(self), (self.point, self.action))


class PoisonedMorselError(QueryError):
    """A morsel kept failing after its retry budget, including the final
    inline re-execution — the failure is the morsel's, not the pool's."""

    def __init__(self, kind: str, index: int, cause: str) -> None:
        super().__init__(
            f"morsel {index} of {kind!r} task failed after exhausting its "
            f"retry budget (last error: {cause})"
        )
        self.kind = kind
        self.index = index
        self.cause = cause


class CatalogError(ReproError):
    """A catalog lookup failed or a name clashed."""
