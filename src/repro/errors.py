"""Exception hierarchy for the MM-DBMS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition or schema lookup is invalid."""


class StorageError(ReproError):
    """A storage-layer operation failed (partition, heap, tuple access)."""


class PartitionFullError(StorageError):
    """A partition has no free slot for a new tuple."""


class HeapOverflowError(StorageError):
    """A partition's variable-length heap has no room for a value."""


class DanglingPointerError(StorageError):
    """A :class:`~repro.storage.tuples.TupleRef` points at a deleted slot."""


class IndexError_(ReproError):
    """Base class for index-structure errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class DuplicateKeyError(IndexError_):
    """An insert violated a unique-index constraint."""


class KeyNotFoundError(IndexError_):
    """A delete or lookup referenced a key that is not in the index."""


class UnsupportedOperationError(IndexError_):
    """The index does not support the requested operation.

    For example, range scans on hash indexes, or updates on a read-only
    array index used during a merge join.
    """


class ConfigError(ReproError, ValueError):
    """An engine/runtime configuration value is invalid.

    Raised at configuration time (``db.configure_execution`` and the
    config dataclasses behind it) so that a bad engine name or a
    nonsensical batch/worker count fails fast instead of deep inside
    the engine.  Also a :class:`ValueError` so callers that predate the
    dedicated class keep working.
    """


class QueryError(ReproError):
    """A query-processing operation was mis-specified."""


class PlanError(QueryError):
    """A query plan is structurally invalid."""


class TransactionError(ReproError):
    """A transaction-layer failure."""


class DeadlockError(TransactionError):
    """The lock manager detected a deadlock; the transaction must abort."""


class LockTimeoutError(TransactionError):
    """A lock request could not be granted within its bound."""


class TransactionAborted(TransactionError):
    """Operation attempted on a transaction that has already aborted."""


class RecoveryError(ReproError):
    """The recovery subsystem failed to restore a consistent database."""


class CatalogError(ReproError):
    """A catalog lookup failed or a name clashed."""
