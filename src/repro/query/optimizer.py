"""Access-path and join-method selection (paper Section 4).

"Query optimization in MM-DBMS should be simpler than in conventional
database systems, as the cost formulas are less complicated ...  there is
a more definite ordering of preference: a hash lookup (exact match only)
is always faster than a tree lookup which is always faster than a
sequential scan; a precomputed join is always faster than the other join
methods; and a Tree Merge join is nearly always preferred when the T Tree
indices already exist."

The two exceptions of Section 3.3.5 are encoded as cost rules:

1. with only the inner index available, a Tree Join beats building a hash
   table when the outer relation is less than half the inner's size;
2. at high duplicate percentages (high-output joins) Sort Merge wins —
   past ~97% when tree indexes exist (Graph 8), past ~60-80% when the
   tree indexes would have to be built (the Hash Join comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.instrument import count_event
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexMultiLookupNode,
    IndexRangeNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Op,
    Predicate,
)
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

#: Duplicate fraction above which Sort Merge beats Tree Merge (Graph 8).
SORT_MERGE_OVER_TREE_MERGE_DUPS = 0.97
#: Duplicate fraction above which Sort Merge beats Hash Join (Graphs 7/8:
#: 60% skewed, 80% uniform; without skew statistics we use the midpoint).
SORT_MERGE_OVER_HASH_DUPS = 0.70
#: Outer/inner size ratio below which Tree Join beats Hash Join (Graph 6:
#: "the smaller relation is less than half the size of the larger").
TREE_JOIN_SIZE_RATIO = 0.5

#: Default selectivity for predicates the statistics cannot analyse
#: (System R's classic 1/3 for range-shaped conditions).
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Above this many relations the exact DP enumeration (2^n states) gives
#: way to a greedy chain construction using the same cost model.
MAX_DP_TABLES = 12

#: Join-ordering modes accepted by ``configure_optimizer``.
JOIN_ORDERINGS = ("written", "cost")


@dataclass(frozen=True)
class ForecastOps:
    """Forecast Section-3.1 operation counts for one plan step.

    The fields mirror :class:`~repro.instrument.OpCounters` (comparisons,
    moves, hashes, traversals, allocations) so a forecast is directly
    comparable against the counters an execution actually accumulates —
    the program of Liu & Blanas: rank join orders by predicted
    hash-operation counts rather than wall-clock.
    """

    comparisons: float = 0.0
    moves: float = 0.0
    hashes: float = 0.0
    traversals: float = 0.0
    allocations: float = 0.0

    def __add__(self, other: "ForecastOps") -> "ForecastOps":
        return ForecastOps(
            self.comparisons + other.comparisons,
            self.moves + other.moves,
            self.hashes + other.hashes,
            self.traversals + other.traversals,
            self.allocations + other.allocations,
        )

    def weighted(self) -> float:
        """Scalar cost under the same weights as
        :meth:`~repro.instrument.OpCounters.weighted_cost` defaults."""
        return (
            self.comparisons * 1.0
            + self.moves * 0.5
            + self.hashes * 4.0
            + self.traversals * 1.0
            + self.allocations * 2.0
        )

    def as_dict(self) -> Dict[str, float]:
        """Rounded counts for EXPLAIN annotations."""
        return {
            "comparisons": round(self.comparisons),
            "moves": round(self.moves),
            "hashes": round(self.hashes),
            "traversals": round(self.traversals),
            "allocations": round(self.allocations),
            "weighted": round(self.weighted(), 1),
        }


def forecast_selection(rows: float, predicate_leaves: int) -> ForecastOps:
    """Cost of evaluating a selection over ``rows`` tuples.

    A scan reads each tuple once (one counted traversal) and evaluates
    every comparison leaf of the predicate against it.  Index-served
    selections are cheaper in practice; charging the scan shape for every
    candidate keeps the forecast a uniform upper bound, which cancels out
    when ranking orders (each relation's selection runs exactly once in
    any order).
    """
    return ForecastOps(
        comparisons=rows * float(predicate_leaves), traversals=rows
    )


def forecast_hash_join(
    outer_rows: float,
    build_rows: float,
    out_rows: float,
    outer_key_traversals: float = 1.0,
    build_key_traversals: float = 1.0,
) -> ForecastOps:
    """Forecast for :func:`repro.query.join.hash_join`.

    Build: the Chained Bucket Hash charges one hash, one node allocation
    and one move per inserted tuple, plus the key extraction traversal.
    Probe: one hash per outer tuple; the chain walk charges a traversal
    and a comparison per examined node — expected occupancy is
    ``build/table_size`` (~1 at the default sizing) plus one node per
    produced match; each match is one result move.
    """
    build = ForecastOps(
        hashes=build_rows,
        allocations=build_rows,
        moves=build_rows,
        traversals=build_rows * build_key_traversals,
    )
    table_size = max(4.0, build_rows)
    examined = outer_rows * (build_rows / table_size) + out_rows
    probe = ForecastOps(
        hashes=outer_rows,
        comparisons=examined,
        traversals=examined + outer_rows * outer_key_traversals,
        moves=out_rows,
    )
    return build + probe


def forecast_tree_join(
    outer_rows: float,
    inner_rows: float,
    out_rows: float,
    outer_key_traversals: float = 1.0,
) -> ForecastOps:
    """Forecast for :func:`repro.query.join.tree_join` — the paper's
    ``|R1| + |R1| * log2(|R2|)`` comparison shape, probing an existing
    ordered index; matches additionally scan their duplicate run."""
    depth = math.log2(inner_rows) + 1.0 if inner_rows >= 2.0 else 1.0
    searched = outer_rows * depth + out_rows
    return ForecastOps(
        comparisons=searched,
        traversals=searched + outer_rows * outer_key_traversals,
        moves=out_rows,
    )


def forecast_precomputed_join(outer_rows: float, out_rows: float) -> ForecastOps:
    """Forecast for :func:`repro.query.join.precomputed_join` — one
    pointer extraction per outer tuple, one move per produced pair."""
    return ForecastOps(traversals=outer_rows, moves=out_rows)


def forecast_nested_loops_join(
    outer_rows: float, inner_rows: float, out_rows: float
) -> ForecastOps:
    """Forecast for :func:`repro.query.join.nested_loops_join` — the
    O(N^2) strawman; used for forecast sanity checks, never chosen."""
    return ForecastOps(
        comparisons=outer_rows * inner_rows,
        traversals=outer_rows + outer_rows * inner_rows,
        moves=out_rows,
    )


@dataclass(frozen=True)
class JoinChainEdge:
    """One equijoin clause of a multi-join query, owner-resolved.

    ``kind`` is ``"fk"`` when ``left_table.left_field`` is a declared
    foreign key materialised as a tuple pointer into
    ``right_table.right_field`` — such edges compare pointers and are
    only traversable with the pointer-owning side already in the prefix.
    ``"value"`` edges compare plain column values and are symmetric.
    ``position`` is the clause's written position, the deterministic
    tie-break.
    """

    left_table: str
    left_field: str
    right_table: str
    right_field: str
    kind: str = "value"
    position: int = 0


@dataclass(frozen=True)
class JoinChainQuery:
    """A multi-join query graph handed to the cost-based orderer.

    ``tables`` is the written FROM/JOIN order (the fallback and the
    tie-break); ``predicates`` maps each table to its single-table
    pushdown predicate (bare field names, already FK-rewritten) or None;
    ``edges`` are the join clauses.  By SQL construction every clause
    references one previously named table, so the edge set forms a
    connected tree over ``tables``.
    """

    tables: Tuple[str, ...]
    predicates: Mapping[str, Optional[Predicate]]
    edges: Tuple[JoinChainEdge, ...]


@dataclass(frozen=True)
class _ChainStep:
    """One join appended to a growing left-deep chain."""

    table: str
    method: str  # "hash" | "tree" | "precomputed"
    orientation: str  # "normal" (prefix is outer) | "swapped" (T is outer)
    left_col: str
    right_col: str
    out_rows: float
    forecast: ForecastOps


@dataclass(frozen=True)
class _TableInfo:
    """Per-relation statistics shared by every DP state."""

    name: str
    relation: Relation
    base_rows: float
    selectivity: float
    est_rows: float
    pred: Optional[Predicate]
    pred_leaves: int
    selection_forecast: ForecastOps


@dataclass(frozen=True)
class ColumnStatistics:
    """Cardinality statistics for one join column."""

    cardinality: int
    distinct: int

    @property
    def duplicate_fraction(self) -> float:
        """1 - distinct/|R| — the paper's "duplicate percentage" / 100."""
        if self.cardinality == 0:
            return 0.0
        return 1.0 - self.distinct / self.cardinality


class Optimizer:
    """Rule-based planner over a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._stats_cache: Dict[Tuple[str, str, int], ColumnStatistics] = {}
        #: Multi-join ordering mode: ``"written"`` (the default) folds
        #: join clauses exactly as the query wrote them; ``"cost"``
        #: re-orders 3+-relation chains by forecast op counts (see
        #: :meth:`plan_join_chain`).  Set via
        #: ``MainMemoryDatabase.configure_optimizer``.
        self.join_ordering: str = "written"

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def column_stats(self, relation: Relation, field: str) -> ColumnStatistics:
        """Distinct-value statistics, computed through an index scan.

        Cached per (relation, field, version); an exact refresh happens
        whenever the relation changes at all.  Keying on the version
        rather than the cardinality keeps planning deterministic: an
        update that changes distinct counts without changing the row
        count would otherwise serve stale statistics.
        """
        cache_key = (relation.name, field, relation.version)
        cached = self._stats_cache.get(cache_key)
        if cached is not None:
            return cached
        index = relation.index_on(field)
        if index is not None and index.ordered:
            distinct = 0
            previous = _SENTINEL
            for key, __ in index.items_with_keys():
                if previous is _SENTINEL or key != previous:
                    distinct += 1
                    previous = key
        else:
            extractor = relation.key_extractor(field)
            distinct = len(
                {extractor(ref) for ref in relation.any_index().scan()}
            )
        stats = ColumnStatistics(len(relation), distinct)
        self._stats_cache[cache_key] = stats
        return stats

    # ------------------------------------------------------------------ #
    # selection planning
    # ------------------------------------------------------------------ #

    def plan_selection(
        self, relation_name: str, predicate: Optional[Predicate] = None
    ) -> PlanNode:
        """Pick the best access path for a single-relation selection.

        Preference: hash lookup > tree exact lookup > tree range lookup >
        sequential scan, exactly the Section 4 ordering.  Any comparisons
        not served by the chosen index become a residual filter.
        """
        count_event("plans_built")
        relation = self.catalog.relation(relation_name)
        if predicate is None:
            return ScanNode(relation_name)
        # An OR of equalities on one indexed field becomes a union of
        # index lookups — how the paper's Query 2 selects the Toy and
        # Shoe departments with two lookups rather than a scan.
        if isinstance(predicate, Disjunction):
            equality = predicate.equality_keys()
            if equality is not None:
                field_name, keys = equality
                if relation.index_on(field_name, ordered=False):
                    return IndexMultiLookupNode(
                        relation_name, field_name, keys, prefer="hash"
                    )
                if relation.index_on(field_name, ordered=True):
                    return IndexMultiLookupNode(
                        relation_name, field_name, keys, prefer="tree"
                    )
            return ScanNode(relation_name, predicate)
        comparisons = _comparison_leaves(predicate)
        if comparisons is None:
            return ScanNode(relation_name, predicate)

        chosen: Optional[PlanNode] = None
        used: Optional[Comparison] = None
        # 1. hash lookup: exact match on a hash-indexed field.
        for comp in comparisons:
            if comp.op.exact_match and relation.index_on(comp.field, ordered=False):
                chosen = IndexLookupNode(
                    relation_name, comp.field, comp.value, prefer="hash"
                )
                used = comp
                break
        # 2. tree exact lookup.
        if chosen is None:
            for comp in comparisons:
                if comp.op.exact_match and relation.index_on(
                    comp.field, ordered=True
                ):
                    chosen = IndexLookupNode(
                        relation_name, comp.field, comp.value, prefer="tree"
                    )
                    used = comp
                    break
        # 3. tree range lookup.
        if chosen is None:
            for comp in comparisons:
                if comp.op.usable_with_order and not comp.op.exact_match:
                    if relation.index_on(comp.field, ordered=True):
                        low, high, inc_low, inc_high = comp.key_range()
                        chosen = IndexRangeNode(
                            relation_name, comp.field, low, high,
                            inc_low, inc_high,
                        )
                        used = comp
                        break
        # 4. sequential scan through an unrelated index.
        if chosen is None:
            return ScanNode(relation_name, predicate)
        residual = [c for c in comparisons if c is not used]
        if residual:
            residual_pred: Predicate = (
                residual[0] if len(residual) == 1 else Conjunction(tuple(residual))
            )
            return FilterNode(chosen, residual_pred)
        return chosen

    # ------------------------------------------------------------------ #
    # join planning
    # ------------------------------------------------------------------ #

    def choose_join_method(
        self,
        outer: Relation,
        inner: Relation,
        outer_col: str,
        inner_col: str,
    ) -> str:
        """Apply the Section 4 preference order with the 3.3.5 exceptions."""
        # Precomputed join: the outer column is a declared foreign key
        # into the inner relation ("always faster than the other join
        # methods").
        logical = None
        if outer_col in outer.schema.names:
            logical = outer.schema.field(outer_col)
        if (
            logical is not None
            and logical.references is not None
            and logical.references.relation == inner.name
            and inner_col in (REF_COLUMN, logical.references.field)
        ):
            return "precomputed"

        outer_tree = outer.index_on(outer_col, ordered=True)
        inner_tree = inner.index_on(inner_col, ordered=True)
        if outer_tree is not None and inner_tree is not None:
            dups = max(
                self.column_stats(outer, outer_col).duplicate_fraction,
                self.column_stats(inner, inner_col).duplicate_fraction,
            )
            if dups >= SORT_MERGE_OVER_TREE_MERGE_DUPS:
                return "sort_merge"  # exception 2, Graph 8's crossover
            return "tree_merge"
        if (
            inner_tree is not None
            and len(outer) < TREE_JOIN_SIZE_RATIO * len(inner)
        ):
            return "tree"  # exception 1, Graph 6's small-outer regime
        dups = max(
            self.column_stats(outer, outer_col).duplicate_fraction,
            self.column_stats(inner, inner_col).duplicate_fraction,
        )
        if dups >= SORT_MERGE_OVER_HASH_DUPS:
            return "sort_merge"  # exception 2 against Hash Join
        return "hash"

    def plan_join(
        self,
        outer_name: str,
        inner_name: str,
        outer_col: str,
        inner_col: str,
        outer_predicate: Optional[Predicate] = None,
        inner_predicate: Optional[Predicate] = None,
    ) -> PlanNode:
        """Plan a two-relation equijoin with optional local predicates.

        Index-based join methods require bare relation scans; when a
        local predicate blocks that, the optimizer falls back to the
        generic methods on the filtered input.
        """
        count_event("plans_built")
        outer = self.catalog.relation(outer_name)
        inner = self.catalog.relation(inner_name)
        method = self.choose_join_method(outer, inner, outer_col, inner_col)

        if method == "tree_merge" and (outer_predicate or inner_predicate):
            method = "hash"  # indexes live on base relations only
        if method == "tree" and inner_predicate:
            method = "hash"
        if method == "precomputed" and inner_predicate:
            # Filter after following pointers instead.  The predicate's
            # fields are qualified with the inner relation's name so they
            # resolve unambiguously in the join's output.
            left_plan = self.plan_selection(outer_name, outer_predicate)
            join = JoinNode(
                left_plan, ScanNode(inner_name), outer_col, REF_COLUMN,
                "precomputed",
            )
            return FilterNode(join, _qualify(inner_predicate, inner_name))

        left_plan: PlanNode
        right_plan: PlanNode
        if method == "tree_merge":
            left_plan = ScanNode(outer_name)
            right_plan = ScanNode(inner_name)
        else:
            left_plan = self.plan_selection(outer_name, outer_predicate)
            if method in ("tree", "precomputed"):
                right_plan = ScanNode(inner_name)
            else:
                right_plan = self.plan_selection(inner_name, inner_predicate)
        join_inner_col = (
            REF_COLUMN if method == "precomputed" else inner_col
        )
        return JoinNode(left_plan, right_plan, outer_col, join_inner_col, method)

    # ------------------------------------------------------------------ #
    # selectivity estimation
    # ------------------------------------------------------------------ #

    def equality_selectivity(self, relation_name: str, field_name: str) -> float:
        """Fraction of rows matched by one equality on the column."""
        relation = self.catalog.relation(relation_name)
        if field_name not in relation.schema.names:
            return DEFAULT_SELECTIVITY
        stats = self.column_stats(relation, field_name)
        if stats.cardinality == 0 or stats.distinct == 0:
            return 1.0
        return 1.0 / stats.distinct

    def predicate_selectivity(
        self, relation_name: str, predicate: Optional[Predicate]
    ) -> float:
        """Estimated match fraction of a predicate on one relation.

        Equalities use exact ``1/distinct`` from the column statistics;
        ranges (and anything the statistics cannot analyse) fall back to
        :data:`DEFAULT_SELECTIVITY`; conjunctions multiply, disjunctions
        add (capped at 1).
        """
        if predicate is None:
            return 1.0
        if isinstance(predicate, Conjunction):
            out = 1.0
            for part in predicate.parts:
                out *= self.predicate_selectivity(relation_name, part)
            return out
        if isinstance(predicate, Disjunction):
            total = sum(
                self.predicate_selectivity(relation_name, part)
                for part in predicate.parts
            )
            return min(1.0, total)
        if isinstance(predicate, Comparison):
            field_name = predicate.field.rsplit(".", 1)[-1]
            if predicate.op is Op.EQ:
                return self.equality_selectivity(relation_name, field_name)
            return DEFAULT_SELECTIVITY
        # Engine-internal predicate classes (imported lazily: the engine
        # module imports this package at load time).
        from repro.engine.database import _NeverMatches

        if isinstance(predicate, _NeverMatches):
            return 0.0
        return DEFAULT_SELECTIVITY

    # ------------------------------------------------------------------ #
    # cost-based multi-join ordering
    # ------------------------------------------------------------------ #

    def plan_join_chain(self, query: JoinChainQuery) -> Optional[PlanNode]:
        """Order a multi-join chain by forecast op counts.

        Enumerates left-deep chains over the query's join tree with a
        subset DP — a state per connected table subset, extended only
        along join edges (connected-subgraph pruning; cross products
        never arise because the SQL join syntax forces connectivity) —
        and keeps, per subset, the cheapest (forecast weighted-op)
        prefix.  Beyond :data:`MAX_DP_TABLES` relations a greedy chain
        construction over the same candidate/cost machinery takes over.

        Returns the annotated plan (``est_rows`` / ``est_ops`` per join,
        ``join_order`` on the top join, and the stats dependency set on
        the root), or ``None`` when no feasible complete order exists —
        the caller then falls back to the written order.
        """
        tables = query.tables
        if len(tables) < 3:
            return None
        info: Dict[str, _TableInfo] = {}
        for name in tables:
            relation = self.catalog.relation(name)
            pred = query.predicates.get(name)
            selectivity = self.predicate_selectivity(name, pred)
            base = float(len(relation))
            leaves = _predicate_leaf_count(pred)
            info[name] = _TableInfo(
                name,
                relation,
                base,
                selectivity,
                max(base * selectivity, 0.0),
                pred,
                leaves,
                forecast_selection(base, leaves),
            )
        by_table: Dict[str, List[JoinChainEdge]] = {t: [] for t in tables}
        for edge in query.edges:
            if edge.left_table not in by_table or edge.right_table not in by_table:
                return None
            by_table[edge.left_table].append(edge)
            by_table[edge.right_table].append(edge)
        if len(tables) > MAX_DP_TABLES:
            chosen = self._greedy_order(query, info, by_table)
        else:
            chosen = self._dp_order(query, info, by_table)
        if chosen is None:
            return None
        count_event("join_orders_costed")
        order, steps = chosen
        return self._build_chain_plan(query, info, order, steps)

    def _dp_order(self, query, info, by_table):
        """Exact left-deep DP: best (cost, rows, order, steps) per
        connected subset; deterministic via sorted iteration, strict
        improvement, and written-position candidate order."""
        n = len(query.tables)
        states: Dict[frozenset, Tuple[float, float, tuple, tuple]] = {}
        for name in query.tables:
            ti = info[name]
            states[frozenset((name,))] = (
                ti.selection_forecast.weighted(),
                ti.est_rows,
                (name,),
                (),
            )
        for size in range(1, n):
            layer = sorted(
                (s for s in states if len(s) == size),
                key=lambda s: tuple(sorted(s)),
            )
            for subset in layer:
                cost, rows, order, steps = states[subset]
                for step in self._extensions(info, by_table, subset, rows):
                    new_set = subset | {step.table}
                    new_cost = cost + step.forecast.weighted()
                    existing = states.get(new_set)
                    if existing is None or new_cost < existing[0]:
                        states[new_set] = (
                            new_cost,
                            step.out_rows,
                            order + (step.table,),
                            steps + (step,),
                        )
        full = states.get(frozenset(query.tables))
        if full is None:
            return None
        return full[2], full[3]

    def _greedy_order(self, query, info, by_table):
        """Greedy chain for very wide joins: start at the smallest
        estimated relation, repeatedly take the cheapest feasible
        extension."""
        tables = list(query.tables)
        start = min(tables, key=lambda t: (info[t].est_rows, tables.index(t)))
        subset = frozenset((start,))
        rows = info[start].est_rows
        order: tuple = (start,)
        steps: tuple = ()
        while len(subset) < len(tables):
            candidates = self._extensions(info, by_table, subset, rows)
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda s: (s.forecast.weighted(), s.out_rows),
            )
            subset = subset | {best.table}
            rows = best.out_rows
            order = order + (best.table,)
            steps = steps + (best,)
        return order, steps

    def _extensions(
        self, info, by_table, subset: frozenset, prefix_rows: float
    ) -> List[_ChainStep]:
        """Every candidate join step extending ``subset`` by one table.

        Only edges with exactly one endpoint inside the prefix qualify
        (connected-subgraph pruning).  Foreign-key pointer edges are
        traversable only with the pointer-owning side already joined —
        the stored value *is* the pointer, so the comparison must be
        pointer-vs-self-reference.
        """
        edges = sorted(
            {edge for name in subset for edge in by_table[name]},
            key=lambda e: e.position,
        )
        steps: List[_ChainStep] = []
        for edge in edges:
            in_left = edge.left_table in subset
            in_right = edge.right_table in subset
            if in_left == in_right:
                continue
            if edge.kind == "fk":
                if not in_left:
                    continue
                steps.extend(self._fk_candidates(info, prefix_rows, edge))
            elif in_left:
                steps.extend(
                    self._value_candidates(
                        info,
                        prefix_rows,
                        edge.left_table,
                        edge.left_field,
                        edge.right_table,
                        edge.right_field,
                    )
                )
            else:
                steps.extend(
                    self._value_candidates(
                        info,
                        prefix_rows,
                        edge.right_table,
                        edge.right_field,
                        edge.left_table,
                        edge.left_field,
                    )
                )
        return steps

    def _fk_candidates(
        self, info, prefix_rows: float, edge: JoinChainEdge
    ) -> List[_ChainStep]:
        """Candidates consuming a foreign-key pointer edge.

        Each prefix row's stored pointer matches exactly one target
        tuple, so the output is the prefix scaled by the target's
        selectivity.  An unfiltered target allows the precomputed join
        (pure pointer following); a filtered one hashes the target's
        self-references — the build keys are the rows' own pointers, so
        key extraction on the build side is free.
        """
        ti = info[edge.right_table]
        out = prefix_rows * ti.selectivity
        qualified = f"{edge.left_table}.{edge.left_field}"
        steps: List[_ChainStep] = []
        if ti.pred is None:
            steps.append(
                _ChainStep(
                    ti.name,
                    "precomputed",
                    "normal",
                    qualified,
                    REF_COLUMN,
                    out,
                    forecast_precomputed_join(prefix_rows, out),
                )
            )
        forecast = ti.selection_forecast + forecast_hash_join(
            prefix_rows, ti.est_rows, out, build_key_traversals=0.0
        )
        steps.append(
            _ChainStep(
                ti.name, "hash", "normal", qualified, REF_COLUMN, out, forecast
            )
        )
        return steps

    def _value_candidates(
        self,
        info,
        prefix_rows: float,
        prefix_table: str,
        prefix_field: str,
        new_table: str,
        new_field: str,
    ) -> List[_ChainStep]:
        """Candidates for a plain value equijoin: hash with either build
        side, plus a Tree Join probe when the new table keeps its ordered
        index usable (no pushdown predicate)."""
        pi = info[prefix_table]
        ti = info[new_table]
        d_prefix = self.column_stats(pi.relation, prefix_field).distinct
        d_new = self.column_stats(ti.relation, new_field).distinct
        out = prefix_rows * ti.est_rows / float(max(d_prefix, d_new, 1))
        qualified = f"{prefix_table}.{prefix_field}"
        steps = [
            _ChainStep(
                ti.name,
                "hash",
                "normal",
                qualified,
                new_field,
                out,
                ti.selection_forecast
                + forecast_hash_join(prefix_rows, ti.est_rows, out),
            ),
            _ChainStep(
                ti.name,
                "hash",
                "swapped",
                new_field,
                qualified,
                out,
                ti.selection_forecast
                + forecast_hash_join(ti.est_rows, prefix_rows, out),
            ),
        ]
        if (
            ti.pred is None
            and ti.relation.index_on(new_field, ordered=True) is not None
        ):
            steps.append(
                _ChainStep(
                    ti.name,
                    "tree",
                    "normal",
                    qualified,
                    new_field,
                    out,
                    forecast_tree_join(prefix_rows, ti.base_rows, out),
                )
            )
        return steps

    def _build_chain_plan(
        self, query: JoinChainQuery, info, order: tuple, steps: tuple
    ) -> PlanNode:
        """Materialise the chosen order as an annotated left-deep plan."""
        first = info[order[0]]
        plan: PlanNode = self.plan_selection(first.name, first.pred)
        top_join: Optional[JoinNode] = None
        for step in steps:
            ti = info[step.table]
            if step.method in ("precomputed", "tree"):
                node = JoinNode(
                    plan,
                    ScanNode(ti.name),
                    step.left_col,
                    step.right_col,
                    step.method,
                )
            elif step.orientation == "swapped":
                node = JoinNode(
                    self.plan_selection(ti.name, ti.pred),
                    plan,
                    step.left_col,
                    step.right_col,
                    "hash",
                )
            else:
                node = JoinNode(
                    plan,
                    self.plan_selection(ti.name, ti.pred),
                    step.left_col,
                    step.right_col,
                    "hash",
                )
            node.est_rows = step.out_rows
            node.est_ops = step.forecast.as_dict()
            plan = node
            top_join = node
        if top_join is not None:
            top_join.join_order = tuple(order)
        # The ordering decision consumed statistics of every joined
        # relation; record them so cached-plan staleness checks cover the
        # full set even if a future plan shape drops a scan leaf.
        plan._repro_extra_relations = frozenset(query.tables)
        return plan


def _predicate_leaf_count(predicate: Optional[Predicate]) -> int:
    """Comparison-leaf count of a predicate tree (0 for None)."""
    if predicate is None:
        return 0
    if isinstance(predicate, (Conjunction, Disjunction)):
        return sum(_predicate_leaf_count(part) for part in predicate.parts)
    return 1


class _SentinelType:
    __slots__ = ()


_SENTINEL = _SentinelType()


def _comparison_leaves(predicate: Predicate):
    """Comparison leaves of a predicate, or None when not analysable."""
    if isinstance(predicate, Comparison):
        return (predicate,)
    if isinstance(predicate, Conjunction):
        leaves = predicate.comparisons()
        # A conjunction containing non-comparison parts is not analysable.
        flat_count = sum(
            1 for p in _flatten(predicate)
        )
        if len(leaves) == flat_count:
            return leaves
        return None
    return None


def _flatten(predicate: Predicate):
    if isinstance(predicate, Conjunction):
        for part in predicate.parts:
            yield from _flatten(part)
    else:
        yield predicate


def _qualify(predicate: Predicate, relation_name: str) -> Predicate:
    """Prefix every comparison's field with ``relation_name.``."""
    if isinstance(predicate, Comparison):
        return Comparison(
            f"{relation_name}.{predicate.field}",
            predicate.op,
            predicate.value,
            predicate.high,
        )
    if isinstance(predicate, Conjunction):
        return Conjunction(
            tuple(_qualify(part, relation_name) for part in predicate.parts)
        )
    return predicate
