"""Access-path and join-method selection (paper Section 4).

"Query optimization in MM-DBMS should be simpler than in conventional
database systems, as the cost formulas are less complicated ...  there is
a more definite ordering of preference: a hash lookup (exact match only)
is always faster than a tree lookup which is always faster than a
sequential scan; a precomputed join is always faster than the other join
methods; and a Tree Merge join is nearly always preferred when the T Tree
indices already exist."

The two exceptions of Section 3.3.5 are encoded as cost rules:

1. with only the inner index available, a Tree Join beats building a hash
   table when the outer relation is less than half the inner's size;
2. at high duplicate percentages (high-output joins) Sort Merge wins —
   past ~97% when tree indexes exist (Graph 8), past ~60-80% when the
   tree indexes would have to be built (the Hash Join comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import PlanError
from repro.instrument import count_event
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexMultiLookupNode,
    IndexRangeNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Op,
    Predicate,
)
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

#: Duplicate fraction above which Sort Merge beats Tree Merge (Graph 8).
SORT_MERGE_OVER_TREE_MERGE_DUPS = 0.97
#: Duplicate fraction above which Sort Merge beats Hash Join (Graphs 7/8:
#: 60% skewed, 80% uniform; without skew statistics we use the midpoint).
SORT_MERGE_OVER_HASH_DUPS = 0.70
#: Outer/inner size ratio below which Tree Join beats Hash Join (Graph 6:
#: "the smaller relation is less than half the size of the larger").
TREE_JOIN_SIZE_RATIO = 0.5


@dataclass(frozen=True)
class ColumnStatistics:
    """Cardinality statistics for one join column."""

    cardinality: int
    distinct: int

    @property
    def duplicate_fraction(self) -> float:
        """1 - distinct/|R| — the paper's "duplicate percentage" / 100."""
        if self.cardinality == 0:
            return 0.0
        return 1.0 - self.distinct / self.cardinality


class Optimizer:
    """Rule-based planner over a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._stats_cache: Dict[Tuple[str, str, int], ColumnStatistics] = {}

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def column_stats(self, relation: Relation, field: str) -> ColumnStatistics:
        """Distinct-value statistics, computed through an index scan.

        Cached per (relation, field, version); an exact refresh happens
        whenever the relation changes at all.  Keying on the version
        rather than the cardinality keeps planning deterministic: an
        update that changes distinct counts without changing the row
        count would otherwise serve stale statistics.
        """
        cache_key = (relation.name, field, relation.version)
        cached = self._stats_cache.get(cache_key)
        if cached is not None:
            return cached
        index = relation.index_on(field)
        if index is not None and index.ordered:
            distinct = 0
            previous = _SENTINEL
            for key, __ in index.items_with_keys():
                if previous is _SENTINEL or key != previous:
                    distinct += 1
                    previous = key
        else:
            extractor = relation.key_extractor(field)
            distinct = len(
                {extractor(ref) for ref in relation.any_index().scan()}
            )
        stats = ColumnStatistics(len(relation), distinct)
        self._stats_cache[cache_key] = stats
        return stats

    # ------------------------------------------------------------------ #
    # selection planning
    # ------------------------------------------------------------------ #

    def plan_selection(
        self, relation_name: str, predicate: Optional[Predicate] = None
    ) -> PlanNode:
        """Pick the best access path for a single-relation selection.

        Preference: hash lookup > tree exact lookup > tree range lookup >
        sequential scan, exactly the Section 4 ordering.  Any comparisons
        not served by the chosen index become a residual filter.
        """
        count_event("plans_built")
        relation = self.catalog.relation(relation_name)
        if predicate is None:
            return ScanNode(relation_name)
        # An OR of equalities on one indexed field becomes a union of
        # index lookups — how the paper's Query 2 selects the Toy and
        # Shoe departments with two lookups rather than a scan.
        if isinstance(predicate, Disjunction):
            equality = predicate.equality_keys()
            if equality is not None:
                field_name, keys = equality
                if relation.index_on(field_name, ordered=False):
                    return IndexMultiLookupNode(
                        relation_name, field_name, keys, prefer="hash"
                    )
                if relation.index_on(field_name, ordered=True):
                    return IndexMultiLookupNode(
                        relation_name, field_name, keys, prefer="tree"
                    )
            return ScanNode(relation_name, predicate)
        comparisons = _comparison_leaves(predicate)
        if comparisons is None:
            return ScanNode(relation_name, predicate)

        chosen: Optional[PlanNode] = None
        used: Optional[Comparison] = None
        # 1. hash lookup: exact match on a hash-indexed field.
        for comp in comparisons:
            if comp.op.exact_match and relation.index_on(comp.field, ordered=False):
                chosen = IndexLookupNode(
                    relation_name, comp.field, comp.value, prefer="hash"
                )
                used = comp
                break
        # 2. tree exact lookup.
        if chosen is None:
            for comp in comparisons:
                if comp.op.exact_match and relation.index_on(
                    comp.field, ordered=True
                ):
                    chosen = IndexLookupNode(
                        relation_name, comp.field, comp.value, prefer="tree"
                    )
                    used = comp
                    break
        # 3. tree range lookup.
        if chosen is None:
            for comp in comparisons:
                if comp.op.usable_with_order and not comp.op.exact_match:
                    if relation.index_on(comp.field, ordered=True):
                        low, high, inc_low, inc_high = comp.key_range()
                        chosen = IndexRangeNode(
                            relation_name, comp.field, low, high,
                            inc_low, inc_high,
                        )
                        used = comp
                        break
        # 4. sequential scan through an unrelated index.
        if chosen is None:
            return ScanNode(relation_name, predicate)
        residual = [c for c in comparisons if c is not used]
        if residual:
            residual_pred: Predicate = (
                residual[0] if len(residual) == 1 else Conjunction(tuple(residual))
            )
            return FilterNode(chosen, residual_pred)
        return chosen

    # ------------------------------------------------------------------ #
    # join planning
    # ------------------------------------------------------------------ #

    def choose_join_method(
        self,
        outer: Relation,
        inner: Relation,
        outer_col: str,
        inner_col: str,
    ) -> str:
        """Apply the Section 4 preference order with the 3.3.5 exceptions."""
        # Precomputed join: the outer column is a declared foreign key
        # into the inner relation ("always faster than the other join
        # methods").
        logical = None
        if outer_col in outer.schema.names:
            logical = outer.schema.field(outer_col)
        if (
            logical is not None
            and logical.references is not None
            and logical.references.relation == inner.name
            and inner_col in (REF_COLUMN, logical.references.field)
        ):
            return "precomputed"

        outer_tree = outer.index_on(outer_col, ordered=True)
        inner_tree = inner.index_on(inner_col, ordered=True)
        if outer_tree is not None and inner_tree is not None:
            dups = max(
                self.column_stats(outer, outer_col).duplicate_fraction,
                self.column_stats(inner, inner_col).duplicate_fraction,
            )
            if dups >= SORT_MERGE_OVER_TREE_MERGE_DUPS:
                return "sort_merge"  # exception 2, Graph 8's crossover
            return "tree_merge"
        if (
            inner_tree is not None
            and len(outer) < TREE_JOIN_SIZE_RATIO * len(inner)
        ):
            return "tree"  # exception 1, Graph 6's small-outer regime
        dups = max(
            self.column_stats(outer, outer_col).duplicate_fraction,
            self.column_stats(inner, inner_col).duplicate_fraction,
        )
        if dups >= SORT_MERGE_OVER_HASH_DUPS:
            return "sort_merge"  # exception 2 against Hash Join
        return "hash"

    def plan_join(
        self,
        outer_name: str,
        inner_name: str,
        outer_col: str,
        inner_col: str,
        outer_predicate: Optional[Predicate] = None,
        inner_predicate: Optional[Predicate] = None,
    ) -> PlanNode:
        """Plan a two-relation equijoin with optional local predicates.

        Index-based join methods require bare relation scans; when a
        local predicate blocks that, the optimizer falls back to the
        generic methods on the filtered input.
        """
        count_event("plans_built")
        outer = self.catalog.relation(outer_name)
        inner = self.catalog.relation(inner_name)
        method = self.choose_join_method(outer, inner, outer_col, inner_col)

        if method == "tree_merge" and (outer_predicate or inner_predicate):
            method = "hash"  # indexes live on base relations only
        if method == "tree" and inner_predicate:
            method = "hash"
        if method == "precomputed" and inner_predicate:
            # Filter after following pointers instead.  The predicate's
            # fields are qualified with the inner relation's name so they
            # resolve unambiguously in the join's output.
            left_plan = self.plan_selection(outer_name, outer_predicate)
            join = JoinNode(
                left_plan, ScanNode(inner_name), outer_col, REF_COLUMN,
                "precomputed",
            )
            return FilterNode(join, _qualify(inner_predicate, inner_name))

        left_plan: PlanNode
        right_plan: PlanNode
        if method == "tree_merge":
            left_plan = ScanNode(outer_name)
            right_plan = ScanNode(inner_name)
        else:
            left_plan = self.plan_selection(outer_name, outer_predicate)
            if method in ("tree", "precomputed"):
                right_plan = ScanNode(inner_name)
            else:
                right_plan = self.plan_selection(inner_name, inner_predicate)
        join_inner_col = (
            REF_COLUMN if method == "precomputed" else inner_col
        )
        return JoinNode(left_plan, right_plan, outer_col, join_inner_col, method)


class _SentinelType:
    __slots__ = ()


_SENTINEL = _SentinelType()


def _comparison_leaves(predicate: Predicate):
    """Comparison leaves of a predicate, or None when not analysable."""
    if isinstance(predicate, Comparison):
        return (predicate,)
    if isinstance(predicate, Conjunction):
        leaves = predicate.comparisons()
        # A conjunction containing non-comparison parts is not analysable.
        flat_count = sum(
            1 for p in _flatten(predicate)
        )
        if len(leaves) == flat_count:
            return leaves
        return None
    return None


def _flatten(predicate: Predicate):
    if isinstance(predicate, Conjunction):
        for part in predicate.parts:
            yield from _flatten(part)
    else:
        yield predicate


def _qualify(predicate: Predicate, relation_name: str) -> Predicate:
    """Prefix every comparison's field with ``relation_name.``."""
    if isinstance(predicate, Comparison):
        return Comparison(
            f"{relation_name}.{predicate.field}",
            predicate.op,
            predicate.value,
            predicate.high,
        )
    if isinstance(predicate, Conjunction):
        return Conjunction(
            tuple(_qualify(part, relation_name) for part in predicate.parts)
        )
    return predicate
