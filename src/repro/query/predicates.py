"""Selection predicates.

A small predicate algebra over named fields, compiled against either a
relation (evaluating through tuple pointers) or a temporary list.  The
optimizer inspects :class:`Comparison` nodes to pick access paths: an
equality on a hash-indexed field becomes a hash lookup, an equality or
range on a tree-indexed field becomes a tree lookup, anything else falls
back to a sequential scan through an unrelated index (Section 4's three
access paths).
"""

from __future__ import annotations

import enum
import operator as _operator
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.instrument import count_compare


class Op(enum.Enum):
    """Comparison operators; the ordered ones can use a T-Tree index.

    Section 3.3.5: "Non-equijoins other than 'not equals' can make use of
    ordering of the data" — the same distinction applies to selections.
    """

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"

    @property
    def usable_with_order(self) -> bool:
        """Whether an ordered index can serve this operator."""
        return self is not Op.NE

    @property
    def exact_match(self) -> bool:
        """Whether this operator is an exact-match lookup (hashable)."""
        return self is Op.EQ


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, read_field: Callable[[str], Any]) -> bool:
        """Evaluate against a field-reader for one tuple."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Conjunction":
        return Conjunction((self, other))

    def __or__(self, other: "Predicate") -> "Disjunction":
        return Disjunction((self, other))


@dataclass(frozen=True)
class Comparison(Predicate):
    """``field <op> value`` (or ``field BETWEEN low AND high``)."""

    field: str
    op: Op
    value: Any = None
    high: Any = None  # BETWEEN only

    def __post_init__(self) -> None:
        if self.op is Op.BETWEEN and self.high is None:
            raise ValueError("BETWEEN requires both bounds")

    def matches(self, read_field: Callable[[str], Any]) -> bool:
        actual = read_field(self.field)
        count_compare()
        if self.op is Op.EQ:
            return actual == self.value
        if self.op is Op.NE:
            return actual != self.value
        if self.op is Op.LT:
            return actual < self.value
        if self.op is Op.LE:
            return actual <= self.value
        if self.op is Op.GT:
            return actual > self.value
        if self.op is Op.GE:
            return actual >= self.value
        count_compare()
        return self.value <= actual <= self.high

    def key_range(self) -> Tuple[Optional[Any], Optional[Any], bool, bool]:
        """(low, high, include_low, include_high) for an ordered index."""
        if self.op is Op.EQ:
            return self.value, self.value, True, True
        if self.op is Op.LT:
            return None, self.value, True, False
        if self.op is Op.LE:
            return None, self.value, True, True
        if self.op is Op.GT:
            return self.value, None, False, True
        if self.op is Op.GE:
            return self.value, None, True, True
        if self.op is Op.BETWEEN:
            return self.value, self.high, True, True
        raise ValueError(f"{self.op} has no key range")

    def __repr__(self) -> str:
        if self.op is Op.BETWEEN:
            return f"({self.field} BETWEEN {self.value!r} AND {self.high!r})"
        return f"({self.field} {self.op.value} {self.value!r})"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """AND of several predicates."""

    parts: Tuple[Predicate, ...]

    def matches(self, read_field: Callable[[str], Any]) -> bool:
        return all(part.matches(read_field) for part in self.parts)

    def comparisons(self) -> Tuple[Comparison, ...]:
        """Flattened comparison leaves (for access-path selection)."""
        result = []
        for part in self.parts:
            if isinstance(part, Comparison):
                result.append(part)
            elif isinstance(part, Conjunction):
                result.extend(part.comparisons())
        return tuple(result)

    def __repr__(self) -> str:
        return " AND ".join(repr(p) for p in self.parts)


@dataclass(frozen=True)
class Disjunction(Predicate):
    """OR of several predicates — the paper's Query 2 shape ("employees
    who work in the Toy or Shoe Departments")."""

    parts: Tuple[Predicate, ...]

    def matches(self, read_field: Callable[[str], Any]) -> bool:
        return any(part.matches(read_field) for part in self.parts)

    def equality_keys(self) -> "Optional[Tuple[str, Tuple[Any, ...]]]":
        """``(field, keys)`` when every branch is an equality on one
        common field — servable as a union of index lookups — else None.
        """
        field_name: Optional[str] = None
        keys = []
        for part in self.parts:
            if not isinstance(part, Comparison) or part.op is not Op.EQ:
                return None
            if field_name is None:
                field_name = part.field
            elif part.field != field_name:
                return None
            keys.append(part.value)
        if field_name is None:
            return None
        return field_name, tuple(keys)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


#: Raw two-value comparators for theta joins, keyed by operator text.
#:
#: These are deliberately *uninstrumented*: the instrumented site is the
#: caller — ``theta_join`` charges one ``count_compare`` per probe
#: before invoking the comparator, so routing every theta comparison
#: through this table keeps Section 3.1 totals exact without double
#: counting.  (An audit found the executor previously kept a private
#: copy of this table; it now lives here, next to the predicate
#: algebra, so new call sites cannot silently fork the semantics.)
THETA_COMPARATORS: "dict[str, Callable[[Any, Any], bool]]" = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


def eq(field: str, value: Any) -> Comparison:
    """``field = value``"""
    return Comparison(field, Op.EQ, value)


def ne(field: str, value: Any) -> Comparison:
    """``field != value``"""
    return Comparison(field, Op.NE, value)


def lt(field: str, value: Any) -> Comparison:
    """``field < value``"""
    return Comparison(field, Op.LT, value)


def le(field: str, value: Any) -> Comparison:
    """``field <= value``"""
    return Comparison(field, Op.LE, value)


def gt(field: str, value: Any) -> Comparison:
    """``field > value``"""
    return Comparison(field, Op.GT, value)


def ge(field: str, value: Any) -> Comparison:
    """``field >= value``"""
    return Comparison(field, Op.GE, value)


def between(field: str, low: Any, high: Any) -> Comparison:
    """``field BETWEEN low AND high`` (inclusive)."""
    return Comparison(field, Op.BETWEEN, low, high)
