"""Query plans: a small tree of composable operator nodes.

A plan node evaluates (via :mod:`repro.query.executor`) to a
:class:`~repro.storage.temporary.TemporaryList`.  The node set mirrors the
paper's operator inventory: three selection access paths, the join method
family, and descriptor projection with optional duplicate elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.query.predicates import Predicate

#: Pseudo-column naming the row's own tuple pointer.  Joining an outer
#: REF field against the inner's ``REF_COLUMN`` is the paper's Query 2:
#: "comparisons will be performed using the tuple pointers".
REF_COLUMN = "__ref__"

#: The join methods the executor understands.
JOIN_METHODS = (
    "nested_loops",
    "hash",
    "tree",
    "sort_merge",
    "tree_merge",
    "precomputed",
)


class PlanNode:
    """Base class for plan nodes."""

    def explain(self, depth: int = 0) -> str:
        """A human-readable plan tree (one node per line)."""
        raise NotImplementedError

    def _indent(self, depth: int) -> str:
        return "  " * depth


@dataclass
class ScanNode(PlanNode):
    """Sequential scan of a relation through one of its indexes.

    The slowest access path; carries an optional residual predicate.
    """

    relation_name: str
    predicate: Optional[Predicate] = None

    def explain(self, depth: int = 0) -> str:
        pred = f" filter {self.predicate!r}" if self.predicate else ""
        return f"{self._indent(depth)}Scan({self.relation_name}){pred}"


@dataclass
class IndexLookupNode(PlanNode):
    """Exact-match lookup — hash if possible, else ordered index."""

    relation_name: str
    field_name: str
    key: Any
    prefer: Optional[str] = None  # "hash" | "tree" | None (auto)

    def explain(self, depth: int = 0) -> str:
        how = self.prefer or "auto"
        return (
            f"{self._indent(depth)}IndexLookup({self.relation_name}."
            f"{self.field_name} = {self.key!r}, via {how})"
        )


@dataclass
class IndexMultiLookupNode(PlanNode):
    """Union of exact-match lookups — an OR of equalities on one indexed
    field (the paper's Query 2 selection: Toy or Shoe)."""

    relation_name: str
    field_name: str
    keys: Tuple[Any, ...]
    prefer: Optional[str] = None

    def explain(self, depth: int = 0) -> str:
        how = self.prefer or "auto"
        return (
            f"{self._indent(depth)}IndexMultiLookup({self.relation_name}."
            f"{self.field_name} IN {list(self.keys)!r}, via {how})"
        )


@dataclass
class IndexRangeNode(PlanNode):
    """Range lookup through an ordered index."""

    relation_name: str
    field_name: str
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def explain(self, depth: int = 0) -> str:
        lo = "(" if not self.include_low else "["
        hi = ")" if not self.include_high else "]"
        return (
            f"{self._indent(depth)}IndexRange({self.relation_name}."
            f"{self.field_name} in {lo}{self.low!r}, {self.high!r}{hi})"
        )


@dataclass
class FilterNode(PlanNode):
    """Residual predicate applied to a child's rows."""

    child: PlanNode
    predicate: Predicate

    def explain(self, depth: int = 0) -> str:
        return (
            f"{self._indent(depth)}Filter {self.predicate!r}\n"
            f"{self.child.explain(depth + 1)}"
        )


@dataclass
class JoinNode(PlanNode):
    """Join of two child plans on one column each.

    ``method`` is one of :data:`JOIN_METHODS`.  The index-based methods
    ("tree", "tree_merge", "precomputed") place structural requirements on
    the children, validated at execution time:

    * "tree" — the right child must be a bare relation scan whose join
      field has an ordered index;
    * "tree_merge" — both children must be bare relation scans with
      ordered indexes on their join fields;
    * "precomputed" — the left join column must be a materialised
      foreign-key (REF) field pointing into the right relation; the right
      column must be :data:`REF_COLUMN`.

    ``right_col`` may be :data:`REF_COLUMN` for pointer-equality joins.

    ``op`` generalises to non-equijoins (Section 3.3.5): "<", "<=", ">",
    ">=" run through an ordered index on the right side (method "tree")
    or by nested loops; "!=" — which "cannot make use of ordering" — only
    by nested loops.
    """

    left: PlanNode
    right: PlanNode
    left_col: str
    right_col: str
    method: str = "hash"
    op: str = "="
    #: Cost-based-optimizer annotations, surfaced by EXPLAIN: estimated
    #: output cardinality, forecast Section-3.1 op counts for this join
    #: step, and (on a chain's top join) the chosen table order.  Never
    #: part of plan identity, fingerprints, or execution semantics.
    est_rows: Optional[float] = field(default=None, compare=False, repr=False)
    est_ops: Optional[dict] = field(default=None, compare=False, repr=False)
    join_order: Optional[Tuple[str, ...]] = field(
        default=None, compare=False, repr=False
    )

    _VALID_OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.method not in JOIN_METHODS:
            raise PlanError(
                f"unknown join method {self.method!r}; choose from "
                f"{JOIN_METHODS}"
            )
        if self.op not in self._VALID_OPS:
            raise PlanError(
                f"unknown join operator {self.op!r}; choose from "
                f"{self._VALID_OPS}"
            )
        if self.op != "=" and self.method not in ("tree", "nested_loops"):
            raise PlanError(
                f"non-equijoins run via 'tree' (ordered ops) or "
                f"'nested_loops', not {self.method!r}"
            )
        if self.op == "!=" and self.method == "tree":
            raise PlanError(
                "'!=' cannot use the ordering of the data (Section "
                "3.3.5); use nested_loops"
            )

    def explain(self, depth: int = 0) -> str:
        return (
            f"{self._indent(depth)}Join[{self.method}] "
            f"{self.left_col} {self.op} {self.right_col}\n"
            f"{self.left.explain(depth + 1)}\n"
            f"{self.right.explain(depth + 1)}"
        )


@dataclass
class ProjectNode(PlanNode):
    """Descriptor projection with optional duplicate elimination.

    Projection itself is free ("the descriptor takes the place of
    projection"); only ``deduplicate=True`` does real work, using hashing
    by default per the paper's conclusion, or "sort_scan".
    """

    child: PlanNode
    columns: Tuple[str, ...]
    deduplicate: bool = False
    dedup_method: str = "hash"

    def __init__(
        self,
        child: PlanNode,
        columns: Sequence[str],
        deduplicate: bool = False,
        dedup_method: str = "hash",
    ) -> None:
        if dedup_method not in ("hash", "sort_scan"):
            raise PlanError(
                f"unknown dedup method {dedup_method!r}; "
                "use 'hash' or 'sort_scan'"
            )
        self.child = child
        self.columns = tuple(columns)
        self.deduplicate = deduplicate
        self.dedup_method = dedup_method

    def explain(self, depth: int = 0) -> str:
        dd = f" dedup({self.dedup_method})" if self.deduplicate else ""
        return (
            f"{self._indent(depth)}Project{list(self.columns)}{dd}\n"
            f"{self.child.explain(depth + 1)}"
        )
