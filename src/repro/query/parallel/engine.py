"""The morsel-driven parallel batch executor.

:class:`ParallelBatchExecutor` is a
:class:`~repro.query.vectorized.engine.BatchExecutor` that fans the
hot, data-parallel operators out over a
:class:`~repro.query.parallel.scheduler.MorselScheduler`:

* selection — scan predicates and filters, morsels of the input rows;
* hash equi-join — parallel partitioned build *and* probe, broadcast
  of the merged build table as one pickled blob;
* hash duplicate elimination — local dedup per morsel, ordered merge.

Everything else — index leaves, sorts, the non-hash join methods,
sort-based dedup, non-plain predicates (the FK rewrite captures live
relations), and any input at or below one morsel — takes the inherited
scalar batch path unchanged.

**Counter-merge contract.**  Morsel boundaries are a function of the
input size and ``morsel_size`` only, never of the worker count; every
parallelised operator charges only per-item-decomposable counts in the
workers, and the coordinator charges the whole-operator constants (the
hash-table partition allocation, the dedup set allocation, the final
moves).  Summed, the five Section 3.1 counters are *identical* for any
``workers`` — including 1, which never reaches this class — and
identical to the scalar batch engine.  The one deliberate exception is
the ``deref_saved_traversals`` extra: a per-morsel memo cannot span
morsels, so on repeated-pointer inputs (filters over join output) the
reported physical savings may be lower than the scalar engine's.

Per-morsel counts merge under a ``<op>.morsel`` span each, so with
tracing active the rollup places every worker's ops inside the
operator span that dispatched it (eager mode is already forced when a
tracer is active, exactly as in the scalar batch engine).
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Any, List, Optional, Tuple

from repro.instrument import count_alloc, count_move, count_traverse
from repro.instrument.counters import current_counters
from repro.obs import runtime as obs_runtime
from repro.query.parallel import shm
from repro.query.parallel.scheduler import MorselScheduler
from repro.query.parallel.tasks import merge_packed
from repro.query.parallel.transport import (
    decode_refs,
    decode_rows,
    describable,
    describe,
    encode_rows,
    morsel_bounds,
    plain_predicate,
)
from repro.query.plan import (
    FilterNode,
    JoinNode,
    ProjectNode,
    ScanNode,
)
from repro.query.vectorized.compile import compile_predicate
from repro.query.vectorized.config import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MORSEL_SIZE,
    DEFAULT_RETRY_ATTEMPTS,
    DEFAULT_SHM_THRESHOLD,
    TRANSPORTS,
)
from repro.query.vectorized.engine import BatchExecutor
from repro.query.vectorized.kernels import (
    DEFAULT_PARTITIONS,
    _fit_partitions,
)
from repro.storage.temporary import ResultDescriptor, TemporaryList


class ParallelBatchExecutor(BatchExecutor):
    """Morsel-parallel evaluation on top of the batch engine.

    Same constructor contract as :class:`BatchExecutor` plus the
    parallel knobs; ``db.configure_execution(engine="batch",
    workers=N)`` builds one for ``N > 1`` (``N == 1`` builds the plain
    scalar :class:`BatchExecutor` — no pool, no morsels).
    """

    def __init__(
        self,
        catalog,
        result_cache=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        workers: int = 2,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        pool: str = "auto",
        retry_attempts: int = DEFAULT_RETRY_ATTEMPTS,
        retry_timeout: float = 0.0,
        transport: Optional[str] = None,
        shm_threshold_rows: int = DEFAULT_SHM_THRESHOLD,
        retry_backoff=None,
    ) -> None:
        super().__init__(catalog, result_cache, batch_size)
        if workers < 2:
            raise ValueError(
                "ParallelBatchExecutor needs workers >= 2; "
                "workers=1 is the scalar BatchExecutor"
            )
        self.workers = int(workers)
        self.morsel_size = int(morsel_size)
        if transport is None:
            # Mirror ExecutionConfig: directly-constructed executors
            # (tests, benches) honour the lane-wide env default too.
            transport = os.environ.get("REPRO_TRANSPORT", "pickle")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        #: Why an shm request degraded to pickle (None when it didn't).
        self.transport_fallback: Optional[str] = None
        if transport == "shm" and not shm.available():
            # Loud and deterministic: the caller asked for shm, the
            # platform can't back it, and silence here would make every
            # downstream byte measurement a lie.
            self.transport_fallback = (
                "multiprocessing.shared_memory unavailable; "
                "using the pickle transport"
            )
            warnings.warn(
                f"transport='shm' requested but {self.transport_fallback}",
                RuntimeWarning,
                stacklevel=2,
            )
            transport = "pickle"
        self.transport = transport
        self.shm_threshold_rows = int(shm_threshold_rows)
        self.scheduler = MorselScheduler(
            catalog,
            self.workers,
            pool,
            morsel_size=self.morsel_size,
            retry_attempts=retry_attempts,
            retry_timeout=retry_timeout,
            transport=self.transport,
            retry_backoff=retry_backoff,
        )

    def close(self) -> None:
        """Release the worker pool and the catalog registration."""
        self.scheduler.close()

    # ------------------------------------------------------------------ #
    # morsel plumbing
    # ------------------------------------------------------------------ #

    def _merge_morsels(
        self, op_name: str, results: List[Tuple[Any, tuple]]
    ) -> List[Any]:
        """Fold per-worker counts into the active scope, in morsel order.

        Each morsel's counts merge under their own ``<op>.morsel`` span
        (a no-op context when tracing is off), so span rollup attributes
        the worker's operations to the dispatching operator.  Traced
        results carry a trailing telemetry tuple: its serialized worker
        span tree is grafted *under* the morsel span (purely structural
        — the morsel's counters still come exclusively from the
        ``merge_packed`` rollup, so root totals are untouched), and the
        morsel span is annotated with the worker pid, queue wait, deref
        tallies, and any injected-fault events the scheduler recorded —
        which is how fault annotations survive the worker→coordinator
        round-trip.
        """
        last_run = self.scheduler.last_run or {}
        payloads = []
        for index, item in enumerate(results):
            payload, packed = item[0], item[1]
            if shm.is_rows(payload):
                # A worker packed this result into a transferred
                # segment; materialize it (and reclaim the segment —
                # the coordinator owns it from the transfer on).
                payload = shm.read_rows(payload, unlink=True)
            telemetry = item[2] if len(item) > 2 else None
            with obs_runtime.span(
                f"{op_name}.morsel", "morsel", index=index
            ) as morsel_span:
                merge_packed(current_counters(), packed)
                if morsel_span is not None and telemetry is not None:
                    self._annotate_morsel(
                        morsel_span, index, telemetry, last_run
                    )
            payloads.append(payload)
        return payloads

    @staticmethod
    def _annotate_morsel(
        morsel_span, index: int, telemetry: tuple, last_run: dict
    ) -> None:
        from repro.obs.span import Span

        pid, _elapsed, queue_wait, hits, misses, span_dict = telemetry
        morsel_span.attrs["worker_pid"] = pid
        morsel_span.attrs["queue_wait"] = queue_wait
        if hits or misses:
            morsel_span.attrs["deref_hits"] = hits
            morsel_span.attrs["deref_misses"] = misses
        faults = (last_run.get("faults") or {}).get(index)
        if faults:
            morsel_span.attrs["fault_events"] = list(faults)
        retries = (last_run.get("retries") or {}).get(index)
        if retries:
            morsel_span.attrs["retries"] = retries
        if index in (last_run.get("quarantined") or ()):
            morsel_span.attrs["quarantined"] = True
        transport = (last_run.get("transport") or {}).get(index)
        if transport is not None:
            morsel_span.attrs["transport"] = transport
        payload_bytes = (last_run.get("payload_bytes") or {}).get(index)
        if payload_bytes is not None:
            morsel_span.attrs["payload_bytes"] = payload_bytes
        if span_dict is not None:
            morsel_span.children.append(Span.from_dict(span_dict))

    def _dispatch_morsels(
        self, rows: List[Any]
    ) -> Tuple[List[Any], Optional[str]]:
        """Per-morsel dispatch payload elements, plus a segment to reap.

        Pickle transport (or an input under the shm threshold): plain
        encoded-row slices, exactly the classic wire.  Shm transport
        above the threshold: the whole operator input is packed *once*
        into one coordinator-owned segment, and each morsel carries only
        a tiny slice descriptor naming its ``[start, stop)`` window.
        The caller must unlink the returned segment name after the run
        (see :meth:`_run_op`).
        """
        encoded = encode_rows(rows)
        bounds = morsel_bounds(len(encoded), self.morsel_size)
        if (
            self.transport == "shm"
            and len(encoded) >= self.shm_threshold_rows
        ):
            row_width = len(encoded[0])
            descriptor = shm.write_rows(encoded, row_width, "rows")
            name = descriptor[1]
            return (
                [
                    shm.shm_slice(name, row_width, start, stop)
                    for start, stop in bounds
                ],
                name,
            )
        return [encoded[start:stop] for start, stop in bounds], None

    def _run_op(
        self,
        kind: str,
        payloads: List[tuple],
        segments: Tuple[Optional[str], ...] = (),
    ) -> List[Tuple[Any, tuple]]:
        """One scheduler run, with shm wrapping and segment reaping.

        In shm mode every payload is wrapped as ``("shm:req",
        threshold, inner)`` so workers know to pack large results into
        transferred segments; in pickle mode payloads pass through
        *untouched* — the wire stays byte-identical to the classic
        transport.  Coordinator-owned dispatch/broadcast segments are
        unlinked after the run returns — by then every retry,
        quarantine re-execution, and retry verification has finished
        with them (attached readers on Linux survive the unlink; the
        name just disappears).
        """
        if self.transport == "shm":
            payloads = [
                (shm.REQUEST_TAG, self.shm_threshold_rows, payload)
                for payload in payloads
            ]
        try:
            return self.scheduler.run(kind, payloads)
        finally:
            for name in segments:
                if name is not None:
                    shm.arena().unlink(name)

    # ------------------------------------------------------------------ #
    # parallel selection
    # ------------------------------------------------------------------ #

    def _parallel_scan(self, node: ScanNode, relation) -> Optional[list]:
        """Filtered scan refs via the pool, or None for the scalar path."""
        if node.predicate is None or not plain_predicate(node.predicate):
            return None
        if relation.cardinality <= self.morsel_size:
            return None
        # The one canonical (organically counted) index walk happens
        # here in the coordinator, exactly as on the scalar path;
        # workers re-walk their forked snapshot under a muted scope.
        refs = list(relation.any_index().scan())
        token = self.scheduler.token
        payloads = [
            (token, relation.name, node.predicate, start, stop)
            for start, stop in morsel_bounds(len(refs), self.morsel_size)
        ]
        # Scan dispatch ships no rows (only bounds); results may still
        # return through shm, which _run_op's wrapper signals.
        results = self._run_op("scan_filter", payloads)
        kept: list = []
        for encoded in self._merge_morsels("scan", results):
            kept.extend(decode_refs(encoded))
        return kept

    def _maybe_parallel_filter(
        self, descriptor: ResultDescriptor, predicate, rows: list
    ) -> Optional[list]:
        """Filtered rows via the pool, or None for the scalar path."""
        if (
            len(rows) <= self.morsel_size
            or not plain_predicate(predicate)
            or not describable(self.catalog, descriptor)
        ):
            return None
        token = self.scheduler.token
        spec = describe(descriptor)
        morsels, segment = self._dispatch_morsels(rows)
        payloads = [
            (token, spec, predicate, morsel) for morsel in morsels
        ]
        results = self._run_op("filter_rows", payloads, (segment,))
        kept: list = []
        for encoded in self._merge_morsels("filter", results):
            kept.extend(decode_rows(encoded))
        return kept

    # ------------------------------------------------------------------ #
    # parallel hash join
    # ------------------------------------------------------------------ #

    def _maybe_parallel_hash_join(
        self,
        node: JoinNode,
        left_desc: ResultDescriptor,
        outer: list,
        right_desc: ResultDescriptor,
        inner: list,
    ) -> Optional[list]:
        """Joined rows via the pool, or None for the scalar path."""
        if len(outer) <= self.morsel_size and len(inner) <= self.morsel_size:
            return None
        if not (
            describable(self.catalog, left_desc)
            and describable(self.catalog, right_desc)
        ):
            return None
        token = self.scheduler.token
        with obs_runtime.span("hash_join.build", "join_phase"):
            groups = self._build_groups(token, right_desc, node.right_col, inner)
            # The whole-table constant the scalar kernel charges in its
            # constructor, charged once by the coordinator.
            count_alloc(_fit_partitions(len(inner), DEFAULT_PARTITIONS))
        with obs_runtime.span("hash_join.probe", "join_phase"):
            rows = self._probe_groups(
                token, left_desc, node.left_col, outer, groups, len(inner)
            )
        return rows

    def _build_groups(
        self, token: int, descriptor: ResultDescriptor, column: str, inner: list
    ) -> dict:
        """Build-side groups ``{key: [encoded rows]}`` in input order."""
        from repro.query.parallel import tasks

        if len(inner) <= self.morsel_size:
            # Small build side: group in-process (same charges as one
            # worker morsel would make, minus the shipping).
            key_of, cost = self._batch_key(descriptor, column)
            keys = [key_of(row) for row in inner]
            count_traverse(len(inner) * cost)
            return tasks.build_groups(encode_rows(inner), keys)
        spec = describe(descriptor)
        morsels, segment = self._dispatch_morsels(inner)
        payloads = [
            (token, spec, column, morsel) for morsel in morsels
        ]
        results = self._run_op("hash_build", payloads, (segment,))
        merged: dict = {}
        for groups in self._merge_morsels("hash_join.build", results):
            for key, encoded_rows in groups.items():
                bucket = merged.get(key)
                if bucket is None:
                    merged[key] = encoded_rows
                else:
                    bucket.extend(encoded_rows)
        return merged

    def _probe_groups(
        self,
        token: int,
        descriptor: ResultDescriptor,
        column: str,
        outer: list,
        groups: dict,
        inner_size: int,
    ) -> list:
        from repro.query.parallel import tasks

        if len(outer) <= self.morsel_size:
            # Small probe side: probe in-process against decoded groups.
            key_of, cost = self._batch_key(descriptor, column)
            keys = [key_of(row) for row in outer]
            count_traverse(len(outer) * cost)
            encoded_out = tasks.probe_groups(
                groups, encode_rows(outer), keys
            )
            return decode_rows(encoded_out)
        blob = pickle.dumps(groups, protocol=pickle.HIGHEST_PROTOCOL)
        table_id = self.scheduler.next_blob_id()
        spec = describe(descriptor)
        morsels, segment = self._dispatch_morsels(outer)
        blob_segment: Optional[str] = None
        if (
            self.transport == "shm"
            and len(blob) >= shm.MIN_BLOB_BYTES
        ):
            # Broadcast once: the pickled build table goes into a single
            # segment every worker attaches by name, instead of riding
            # inside every probe payload on the pipe.
            blob = shm.write_blob(blob)
            blob_segment = blob[1]
        payloads = [
            (token, spec, column, table_id, blob, morsel)
            for morsel in morsels
        ]
        results = self._run_op(
            "hash_probe", payloads, (segment, blob_segment)
        )
        out: list = []
        for encoded in self._merge_morsels("hash_join.probe", results):
            out.extend(decode_rows(encoded))
        return out

    # ------------------------------------------------------------------ #
    # parallel hash dedup (shared by pipelined and eager modes)
    # ------------------------------------------------------------------ #

    def _dedup_rows(
        self, descriptor: ResultDescriptor, rows: list, node: ProjectNode
    ) -> list:
        if (
            node.dedup_method == "hash"
            and len(rows) > self.morsel_size
            and describable(self.catalog, descriptor)
        ):
            return self._parallel_dedup(descriptor, rows, node)
        return super()._dedup_rows(descriptor, rows, node)

    def _parallel_dedup(
        self, descriptor: ResultDescriptor, rows: list, node: ProjectNode
    ) -> list:
        token = self.scheduler.token
        spec = describe(descriptor)
        columns = tuple(node.columns)
        morsels, segment = self._dispatch_morsels(rows)
        payloads = [
            (token, spec, columns, morsel) for morsel in morsels
        ]
        results = self._run_op("hash_dedup", payloads, (segment,))
        seen = set()
        add = seen.add
        out: list = []
        append = out.append
        for survivors in self._merge_morsels("dedup", results):
            for key, encoded_row in survivors:
                if key not in seen:
                    add(key)
                    append(encoded_row)
        # The scalar kernel's whole-operator charges: one set allocation
        # and one move per surviving row (the cross-morsel membership
        # re-test above is merge bookkeeping, not a modelled operation).
        count_alloc(1)
        count_move(len(out))
        return decode_rows(out)

    # ------------------------------------------------------------------ #
    # pipelined-mode overrides
    # ------------------------------------------------------------------ #

    def _stream_scan(self, node: ScanNode):
        relation = self.catalog.relation(node.relation_name)
        kept = self._parallel_scan(node, relation)
        if kept is None:
            return super()._stream_scan(node)
        descriptor = ResultDescriptor.whole_relation(relation)
        rows = [(ref,) for ref in kept]
        return descriptor, self._chunks(rows)

    def _stream_filter(self, node: FilterNode):
        descriptor, batches = self._stream(node.child)
        if not (
            plain_predicate(node.predicate)
            and describable(self.catalog, descriptor)
        ):
            return self._scalar_stream_filter(node, descriptor, batches)

        def generate():
            rows: list = []
            iterator = iter(batches)
            for batch in iterator:
                rows.extend(batch)
                if len(rows) > self.morsel_size:
                    break
            else:
                # Never crossed one morsel: scalar-filter the buffer
                # with a single mask (one memo, like the scalar stream).
                yield from self._filter_buffered(node, descriptor, rows)
                return
            for batch in iterator:
                rows.extend(batch)
            kept = self._maybe_parallel_filter(
                descriptor, node.predicate, rows
            )
            if kept is None:  # pragma: no cover - raced describability
                yield from self._filter_buffered(node, descriptor, rows)
                return
            yield from self._chunks(kept)

        return descriptor, generate()

    def _scalar_stream_filter(self, node, descriptor, batches):
        mask = compile_predicate(
            node.predicate, self._row_access(descriptor)
        )

        def generate():
            for batch in batches:
                flags = mask(batch)
                kept = [row for row, keep in zip(batch, flags) if keep]
                if kept:
                    yield kept

        return descriptor, generate()

    def _filter_buffered(self, node, descriptor, rows):
        mask = compile_predicate(
            node.predicate, self._row_access(descriptor)
        )
        for chunk in self._chunks(rows):
            flags = mask(chunk)
            kept = [row for row, keep in zip(chunk, flags) if keep]
            if kept:
                yield kept

    def _stream_hash_join(self, node: JoinNode):
        left_desc, left_batches = self._stream(node.left)
        right_desc, right_batches = self._stream(node.right)
        descriptor = self._join_descriptor(left_desc, right_desc)

        def generate():
            inner: list = []
            for batch in right_batches:
                inner.extend(batch)
            outer: list = []
            for batch in left_batches:
                outer.extend(batch)
            rows = self._maybe_parallel_hash_join(
                node, left_desc, outer, right_desc, inner
            )
            if rows is None:
                rows = self._scalar_hash_join(
                    node, left_desc, outer, right_desc, inner
                )
            yield from self._chunks(rows)

        return descriptor, generate()

    def _scalar_hash_join(
        self, node, left_desc, outer, right_desc, inner
    ) -> list:
        """The scalar batch engine's hash join over materialised inputs."""
        from repro.query.vectorized.kernels import (
            build_hash_table,
            probe_hash_table,
        )

        inner_key, inner_cost = self._batch_key(right_desc, node.right_col)
        outer_key, outer_cost = self._batch_key(left_desc, node.left_col)
        with obs_runtime.span("hash_join.build", "join_phase"):
            table = build_hash_table(inner, inner_key)
            count_traverse(len(inner) * inner_cost)
        with obs_runtime.span("hash_join.probe", "join_phase"):
            rows = probe_hash_table(table, outer, outer_key)
            count_traverse(len(outer) * outer_cost)
        return rows

    # ------------------------------------------------------------------ #
    # eager-mode overrides (tracer / result cache active)
    # ------------------------------------------------------------------ #

    def _execute_scan(self, node: ScanNode) -> TemporaryList:
        relation = self.catalog.relation(node.relation_name)
        kept = self._parallel_scan(node, relation)
        if kept is None:
            return super()._execute_scan(node)
        return TemporaryList.from_refs(relation, kept)

    def _execute_filter(self, node: FilterNode) -> TemporaryList:
        child = self.execute(node.child)
        rows = child.rows()
        kept = self._maybe_parallel_filter(
            child.descriptor, node.predicate, rows
        )
        if kept is None:
            mask = compile_predicate(
                node.predicate, self._row_access(child.descriptor)
            )
            flags = mask(rows)
            kept = [row for row, keep in zip(rows, flags) if keep]
        return TemporaryList(child.descriptor, kept)

    def _execute_join(self, node: JoinNode) -> TemporaryList:
        if node.op == "=" and node.method == "hash":
            left = self.execute(node.left)
            right = self.execute(node.right)
            outer, inner = left.rows(), right.rows()
            rows = self._maybe_parallel_hash_join(
                node, left.descriptor, outer, right.descriptor, inner
            )
            if rows is None:
                rows = self._scalar_hash_join(
                    node, left.descriptor, outer, right.descriptor, inner
                )
            descriptor = self._join_descriptor(
                left.descriptor, right.descriptor
            )
            return TemporaryList(descriptor, rows)
        return super()._execute_join(node)
