"""Wire encoding between the parent process and morsel workers.

Workers are forked copies of the parent, so relations travel by *name*
(resolved against the worker's inherited catalog snapshot) and tuple
pointers travel as plain ``(partition_id, slot)`` int pairs — about 8x
cheaper to pickle than the :class:`~repro.storage.tuples.TupleRef`
dataclass and fully stable across the fork boundary.  Result
descriptors travel as specs: the source relation names plus the
``(source, field, label)`` column triples, rebuilt worker-side against
the same catalog.

Only *plain* predicates cross the boundary: trees of the frozen
``Comparison`` / ``Conjunction`` / ``Disjunction`` dataclasses over
picklable literals.  Anything else (notably the FK-rewrite internals,
which capture live ``Relation`` objects) keeps the operator on the
in-process scalar path.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.query.predicates import Comparison, Conjunction, Disjunction
from repro.storage.temporary import ResultColumn, ResultDescriptor
from repro.storage.tuples import TupleRef

Row = Tuple[TupleRef, ...]

#: Join/predicate literal types that are safe and cheap to pickle.
_PLAIN_VALUES = (int, float, str, bytes, bool, type(None), TupleRef)

# --------------------------------------------------------------------- #
# trace context
# --------------------------------------------------------------------- #

#: Trace modes carried in a task request's optional third element.
#: ``TRACE_TELEMETRY`` ships timing/deref telemetry only (observability
#: metrics without tracing); ``TRACE_SPANS`` additionally ships the
#: worker's serialized span tree for grafting.
TRACE_TELEMETRY = 1
TRACE_SPANS = 2

#: Telemetry tuple layout shipped back by a traced task:
#: ``(pid, elapsed_seconds, queue_wait_seconds, deref_hits,
#:   deref_misses, span_dict_or_None)``.
TELEMETRY_FIELDS = (
    "pid", "elapsed", "queue_wait", "deref_hits", "deref_misses", "span"
)


def trace_request(
    kind: str, payload: tuple, mode: int, index: int, dispatched_at: float
) -> tuple:
    """One task request, with or without a trace context.

    ``mode`` 0 builds the plain two-element request — bit-identical to
    the untraced wire format, so the zero-overhead contract holds when
    observability is off.  Otherwise the context travels as
    ``(mode, morsel_index, dispatch_monotonic)``; ``dispatched_at`` is a
    ``time.monotonic()`` stamp, which on Linux is CLOCK_MONOTONIC and
    therefore comparable across the fork boundary — queue wait is the
    worker-side ``monotonic() - dispatched_at``.
    """
    if not mode:
        return (kind, payload)
    return (kind, payload, (mode, index, dispatched_at))


def encode_refs(refs: Sequence[TupleRef]) -> List[Tuple[int, int]]:
    """Tuple pointers -> ``(partition_id, slot)`` int pairs."""
    return [(ref.partition_id, ref.slot) for ref in refs]


def decode_refs(pairs: Sequence[Tuple[int, int]]) -> List[TupleRef]:
    """``(partition_id, slot)`` int pairs -> tuple pointers."""
    return [TupleRef(part, slot) for part, slot in pairs]


def encode_rows(rows: Sequence[Row]) -> List[Tuple[Tuple[int, int], ...]]:
    """Pointer rows -> tuples of ``(partition_id, slot)`` pairs."""
    return [
        tuple((ref.partition_id, ref.slot) for ref in row) for row in rows
    ]


def decode_rows(
    encoded: Sequence[Tuple[Tuple[int, int], ...]]
) -> List[Row]:
    """Tuples of ``(partition_id, slot)`` pairs -> pointer rows."""
    return [
        tuple(TupleRef(part, slot) for part, slot in row)
        for row in encoded
    ]


def describe(descriptor: ResultDescriptor) -> Tuple[Any, ...]:
    """A picklable spec from which a worker rebuilds the descriptor."""
    return (
        tuple(relation.name for relation in descriptor.sources),
        tuple(
            (col.source, col.field, col.label)
            for col in descriptor.columns
        ),
    )


def rebuild(catalog, spec: Tuple[Any, ...]) -> ResultDescriptor:
    """Worker-side inverse of :func:`describe`."""
    source_names, column_specs = spec
    return ResultDescriptor(
        [catalog.relation(name) for name in source_names],
        [
            ResultColumn(source, field, label)
            for source, field, label in column_specs
        ],
    )


def describable(catalog, descriptor: ResultDescriptor) -> bool:
    """Can this descriptor be rebuilt from the worker's catalog?

    Every source must be the catalog's *own* registered relation (by
    identity, not just by name) — otherwise the forked snapshot would
    resolve the name to a different object than the parent computed
    against.
    """
    for relation in descriptor.sources:
        name = relation.name
        if name not in catalog or catalog.relation(name) is not relation:
            return False
    return True


def plain_predicate(predicate: Optional[Any]) -> bool:
    """Is ``predicate`` a pure dataclass tree over plain literals?

    The FK rewrite and user-defined ``Predicate`` subclasses may close
    over live engine objects; those must not cross the process boundary
    (and their compiled fallbacks may not decompose per-item anyway).
    """
    if predicate is None:
        return True
    if type(predicate) is Comparison:
        return isinstance(predicate.value, _PLAIN_VALUES) and isinstance(
            predicate.high, _PLAIN_VALUES
        )
    if type(predicate) in (Conjunction, Disjunction):
        return all(plain_predicate(part) for part in predicate.parts)
    return False


def morsel_bounds(total: int, morsel_size: int) -> List[Tuple[int, int]]:
    """``[start, stop)`` slices covering ``total`` items.

    Purely a function of the input size and the configured morsel size —
    never of the worker count — so per-morsel counter charges sum to
    the same totals no matter how many workers drain the morsels.
    """
    return [
        (start, min(start + morsel_size, total))
        for start in range(0, total, morsel_size)
    ]
