"""Worker-side morsel tasks.

Each task is a pure function over (a) the catalog snapshot the worker
inherited when the pool forked and (b) a picklable payload.  A task
runs inside its *own* isolated counter scope and returns
``(result, packed_counts)``; the parent replays the packed counts into
its active scope (under a per-morsel span when tracing), so the merged
Section 3.1 totals are exactly what the scalar engine would have
charged — see DESIGN.md section 3.9 for the decomposition argument per
operator.

Catalog snapshots are looked up by *token* in :data:`_CATALOGS`, a
module global the parent fills before any pool process forks.  Because
every relation mutation bumps ``Relation.version`` and the scheduler
re-forks its pool whenever the catalog fingerprint changes, a worker's
inherited snapshot is always logically identical to the parent state
the task was computed against — even for workers forked late.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from itertools import islice
from typing import Any, Dict, List, Optional, Tuple

from repro.fault import runtime as fault_runtime
from repro.instrument import (
    count_hash,
    count_move,
    count_traverse,
    counters_scope,
)
from repro.instrument.counters import OpCounters
from repro.query.executor import filter_column_resolver
from repro.query.parallel import shm
from repro.query.parallel.transport import (
    TRACE_SPANS,
    decode_rows,
    encode_refs,
    encode_rows,
    rebuild,
)
from repro.query.plan import REF_COLUMN
from repro.query.vectorized.compile import compile_predicate
from repro.query.vectorized.deref import (
    RowFieldAccess,
    ScanFieldAccess,
    raw_row_extractor,
)

#: token -> Catalog.  Filled by the parent (scheduler) *before* pool
#: processes fork, inherited copy-on-write by every worker.
_CATALOGS: Dict[int, Any] = {}

#: Decoded probe-table cache, worker-process-local: the same build-side
#: blob is shipped (or broadcast by segment name) with every probe
#: morsel of one join; decoding it once per worker instead of once per
#: morsel keeps the probe hot loop tight.  Bounded LRU: blob ids grow
#: monotonically across statements, so without eviction a long-lived
#: worker would pin every probe table it ever decoded.
_TABLE_CACHE: "OrderedDict[Tuple[int, int], dict]" = OrderedDict()
_TABLE_CACHE_LIMIT = 4
_TABLE_CACHE_EVICTIONS = 0

#: Worker-process-local attach cache for dispatch-slice segments (all
#: morsels of one operator name the same segment).
_SEGMENTS = shm.SegmentCache()


def _cache_table(cache_key: Tuple[int, int], groups: dict) -> None:
    """Insert one decoded probe table, LRU-evicting past the limit."""
    global _TABLE_CACHE_EVICTIONS
    _TABLE_CACHE[cache_key] = groups
    while len(_TABLE_CACHE) > _TABLE_CACHE_LIMIT:
        _TABLE_CACHE.popitem(last=False)
        _TABLE_CACHE_EVICTIONS += 1


def blob_cache_stats() -> Dict[str, int]:
    """This process's decode-cache occupancy and eviction tally."""
    return {
        "entries": len(_TABLE_CACHE),
        "limit": _TABLE_CACHE_LIMIT,
        "evictions": _TABLE_CACHE_EVICTIONS,
    }


def reset_blob_cache() -> None:
    """Drop cached probe tables and the eviction tally (tests)."""
    global _TABLE_CACHE_EVICTIONS
    _TABLE_CACHE.clear()
    _TABLE_CACHE_EVICTIONS = 0


def register_catalog(token: int, catalog: Any) -> None:
    _CATALOGS[token] = catalog


def release_catalog(token: int) -> None:
    _CATALOGS.pop(token, None)


def pack_counts(counters: OpCounters) -> Tuple[int, ...]:
    """An :class:`OpCounters` snapshot as a plain picklable tuple."""
    return (
        counters.comparisons,
        counters.traversals,
        counters.moves,
        counters.hashes,
        counters.allocations,
        dict(counters.extra),
    )


def merge_packed(counters: OpCounters, packed: Tuple[int, ...]) -> None:
    """Replay one worker's packed counts into ``counters``."""
    comparisons, traversals, moves, hashes, allocations, extra = packed
    counters.comparisons += comparisons
    counters.traversals += traversals
    counters.moves += moves
    counters.hashes += hashes
    counters.allocations += allocations
    for name, value in extra.items():
        counters.bump(name, value)


def _muted_scan_slice(relation, start: int, stop: int) -> list:
    """The scan-order refs in ``[start, stop)``, charging nothing.

    The parent performs (and organically charges) the single canonical
    index walk; worker-side re-walks of the forked snapshot are physical
    bookkeeping only, so they run in a discarded counter scope.
    """
    with counters_scope():
        return list(islice(relation.any_index().scan(), start, stop))


def _batch_key(descriptor, column: str):
    """(extractor over decoded rows, traversal charges per row)."""
    if column == REF_COLUMN:
        return (lambda row: row[0]), 0
    return raw_row_extractor(descriptor, column), 1


def build_groups(items: list, keys: list) -> dict:
    """Group ``items`` by parallel ``keys``, insertion order preserved.

    The per-morsel slice of the scalar hash build: charges one hash and
    one move per row, exactly the build kernel's per-row charges; the
    partition-header allocation is charged once by the coordinator.
    """
    groups: dict = {}
    for item, key in zip(items, keys):
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [item]
        else:
            bucket.append(item)
    count_hash(len(items))
    count_move(len(items))
    return groups


def probe_groups(groups: dict, rows: list, keys: list) -> list:
    """Probe encoded rows against merged build groups.

    Emits ``outer + inner`` concatenations with equal-key matches
    newest-first (``reversed``), matching the scalar kernel's LIFO
    order; charges one hash per probe row and one move per emitted row.
    """
    out: list = []
    append = out.append
    for row, key in zip(rows, keys):
        matches = groups.get(key)
        if matches is not None:
            for inner in reversed(matches):
                append(row + inner)
    count_hash(len(rows))
    count_move(len(out))
    return out


def local_dedup(rows: list, keys: list) -> list:
    """First-occurrence-wins survivors of one morsel, with their keys.

    Charges one hash per row (the scalar dedup kernel's per-row hash);
    the single set allocation and the per-survivor moves are charged by
    the coordinator over the *merged* survivor list.
    """
    seen = set()
    add = seen.add
    out: list = []
    append = out.append
    for row, key in zip(rows, keys):
        if key not in seen:
            add(key)
            append((key, row))
    count_hash(len(rows))
    return out


# --------------------------------------------------------------------- #
# task handlers
# --------------------------------------------------------------------- #


def _scan_filter(payload) -> list:
    """Filter one scan-order slice; returns encoded kept refs."""
    token, relation_name, predicate, start, stop = payload
    relation = _CATALOGS[token].relation(relation_name)
    chunk = _muted_scan_slice(relation, start, stop)
    access = ScanFieldAccess(relation)
    mask = compile_predicate(predicate, access)
    flags = mask(chunk)
    kept = [ref for ref, keep in zip(chunk, flags) if keep]
    access.flush()
    return encode_refs(kept)


def _filter_rows(payload) -> list:
    """Filter one morsel of pointer rows; returns encoded kept rows."""
    token, spec, predicate, encoded = payload
    descriptor = rebuild(_CATALOGS[token], spec)
    rows = decode_rows(encoded)
    access = RowFieldAccess(descriptor, filter_column_resolver(descriptor))
    mask = compile_predicate(predicate, access)
    flags = mask(rows)
    kept = [enc for enc, keep in zip(encoded, flags) if keep]
    access.flush()
    return kept


def _hash_build(payload) -> dict:
    """Group one build-side morsel by join key; values stay encoded."""
    token, spec, column, encoded = payload
    descriptor = rebuild(_CATALOGS[token], spec)
    rows = decode_rows(encoded)
    key_of, cost = _batch_key(descriptor, column)
    keys = [key_of(row) for row in rows]
    count_traverse(len(rows) * cost)
    return build_groups(encoded, keys)


def _hash_probe(payload) -> list:
    """Probe one outer morsel against the broadcast build table.

    ``blob`` is either the pickled build table itself (pickle
    transport) or an ``shm:blob`` descriptor naming the segment it was
    broadcast through; either way the *decoded* table is cached by
    ``(token, table_id)``, so a cache hit never touches the blob — or
    the segment — at all.
    """
    token, spec, column, table_id, blob, encoded = payload
    descriptor = rebuild(_CATALOGS[token], spec)
    cache_key = (token, table_id)
    groups = _TABLE_CACHE.get(cache_key)
    if groups is None:
        if shm.is_blob(blob):
            fault_runtime.fire(
                "pool.shm", path="broadcast", segment=blob[1]
            )
            blob = shm.read_blob(blob)
        groups = pickle.loads(blob)
        _cache_table(cache_key, groups)
    else:
        _TABLE_CACHE.move_to_end(cache_key)
    rows = decode_rows(encoded)
    key_of, cost = _batch_key(descriptor, column)
    keys = [key_of(row) for row in rows]
    count_traverse(len(rows) * cost)
    return probe_groups(groups, encoded, keys)


def _hash_dedup(payload) -> list:
    """Locally deduplicate one morsel; returns (key, encoded row) pairs."""
    token, spec, columns, encoded = payload
    descriptor = rebuild(_CATALOGS[token], spec)
    rows = decode_rows(encoded)
    raw = [raw_row_extractor(descriptor, name) for name in columns]
    if len(raw) == 1:
        key_of = raw[0]
    else:

        def key_of(row):
            return tuple(extract(row) for extract in raw)

    keys = [key_of(row) for row in rows]
    count_traverse(len(rows) * len(raw))
    return local_dedup(encoded, keys)


def _extract_keys(payload) -> list:
    """Index-build key prefetch over one ``_all_refs`` slice.

    Purely physical work — the cost model charges key extraction at the
    point of *logical* access, during the coordinator's insert loop —
    so everything here runs uncharged.
    """
    token, relation_name, field_spec, start, stop = payload
    relation = _CATALOGS[token].relation(relation_name)
    with counters_scope():
        refs = list(islice(relation._all_refs(), start, stop))
        schema = relation.physical_schema
        if isinstance(field_spec, (list, tuple)):
            positions = [schema.position(name) for name in field_spec]

            def read_key(ref):
                part, slot = relation._locate(ref)
                return tuple(part.read_field(slot, p) for p in positions)

        else:
            position = schema.position(field_spec)

            def read_key(ref):
                part, slot = relation._locate(ref)
                return part.read_field(slot, position)

        return [read_key(ref) for ref in refs]


# --------------------------------------------------------------------- #
# injected worker failures (scheduler-side fault decisions)
# --------------------------------------------------------------------- #


def injected_failure(request: Tuple[str, tuple]) -> None:
    """A worker task that fails: the ``pool.worker`` "error" action.

    The parent decides the fault at dispatch time (keeping the seeded
    RNG in one process) and submits this instead of the real task, so
    the failure takes the full worker round-trip — pickling, the pool's
    result plumbing, the parent-side gather — like an organic one.
    """
    from repro.errors import InjectedFaultError

    raise InjectedFaultError("pool.worker", "error")


def worker_exit(request: Tuple[str, tuple]) -> None:
    """A worker task that dies hard: the ``pool.worker`` "kill" action.

    ``os._exit`` skips all cleanup, exactly like a segfault or an OOM
    kill; the pool notices the lost process and breaks every outstanding
    future, which is the scheduler's cue to re-fork.
    """
    import os

    os._exit(1)


_HANDLERS = {
    "scan_filter": _scan_filter,
    "filter_rows": _filter_rows,
    "hash_build": _hash_build,
    "hash_probe": _hash_probe,
    "hash_dedup": _hash_dedup,
    "extract_keys": _extract_keys,
}

#: Result shapes the shm transport can pack per task kind.  Kinds whose
#: results are not flat pointer rows (``hash_build`` dict groups,
#: ``hash_dedup`` arbitrary-key pairs, ``extract_keys`` raw values)
#: always return through the pickle pipe.
_RESULT_SHAPES = {
    "scan_filter": "refs",
    "filter_rows": "rows",
    "hash_probe": "rows",
}


def _resolve_element(value: Any) -> Any:
    """Materialize one payload element if it is a dispatch slice.

    The attach is served by the worker-local :data:`_SEGMENTS` LRU (one
    ``shm_open``+``mmap`` per worker per operator, not per morsel); the
    ``pool.shm`` fault point fires first so chaos runs can fail the
    attach/unpack path and exercise the scheduler's retry/quarantine
    healing on this transport.
    """
    if not shm.is_slice(value):
        return value
    fault_runtime.fire("pool.shm", path="dispatch", segment=value[1])
    segment = _SEGMENTS.get(value[1])
    return shm.read_slice(value, segment)


def _unwrap_request(payload: tuple) -> Tuple[tuple, Optional[int]]:
    """Strip the shm request wrapper, materializing dispatch slices.

    Pickle-transport payloads pass through untouched (``None``
    threshold); an ``shm:req`` wrapper yields the inner payload with
    every slice descriptor replaced by its decoded rows, plus the
    result-packing threshold the coordinator asked for.
    """
    if (
        type(payload) is tuple
        and len(payload) == 3
        and payload[0] == shm.REQUEST_TAG
    ):
        __, threshold, inner = payload
        return tuple(_resolve_element(el) for el in inner), threshold
    return payload, None


def _pack_result(kind: str, result: Any, threshold: int) -> Any:
    """Pack a large packable result into a transferred segment.

    Small results (and kinds without a packable shape) return as-is
    through the pickle pipe; packed ones return an ``shm:rows``
    descriptor whose segment the coordinator owns — and unlinks — from
    here on.  Packing is pure transport: no Section 3.1 charges.
    """
    shape = _RESULT_SHAPES.get(kind)
    if shape is None or len(result) < threshold or not shm.available():
        return result
    row_width = 1 if shape == "refs" else len(result[0])
    return shm.write_rows(result, row_width, shape, transfer=True)


def run_task(request: Tuple[str, tuple]) -> Tuple[Any, Tuple[int, ...]]:
    """Run one morsel task in an isolated counter scope.

    The entry point both pool workers and the inline executor call; the
    isolated scope is what makes per-worker counting race-free and the
    packed result mergeable by the parent.

    A request is ``(kind, payload)`` — the untraced fast path, returning
    ``(result, packed_counts)`` exactly as before — or
    ``(kind, payload, trace_ctx)`` when the parent has observability
    active (see :func:`~repro.query.parallel.transport.trace_request`),
    returning ``(result, packed_counts, telemetry)`` where the telemetry
    tuple carries pid, wall-clock, queue wait, the worker-local deref
    hit/miss tallies, and (in span mode) the serialized worker span tree
    for the coordinator to graft.  Either way the packed counts are
    bit-identical: the worker span's scope rolls up into the isolated
    scope, so tracing attributes the same counts, never new ones.
    """
    if len(request) == 2:
        kind, payload = request
        payload, threshold = _unwrap_request(payload)
        with counters_scope() as scope:
            result = _HANDLERS[kind](payload)
        if threshold is not None:
            result = _pack_result(kind, result, threshold)
        return result, pack_counts(scope)
    kind, payload, ctx = request
    return _run_traced(kind, payload, ctx)


def _run_traced(
    kind: str, payload: tuple, ctx: Tuple[int, int, float]
) -> Tuple[Any, Tuple[int, ...], tuple]:
    """One traced task under a worker-local observability instance.

    The worker activates its own lightweight
    :class:`~repro.obs.Observability` (metrics always, tracing in span
    mode) for the duration of the handler and restores the previous
    instance after — essential in inline mode, where "worker" and
    coordinator share a process and the coordinator's tracer must not
    see worker-internal spans directly (they arrive grafted instead,
    identically to the process-pool path).  The deref-cache flush inside
    the handler publishes into the worker-local registry, which is read
    back into the telemetry tuple — this is how per-worker hit rates
    escape forked processes whose registries die with them.
    """
    from repro.obs import Observability, ObservabilityConfig
    from repro.obs import runtime as obs_runtime

    mode, index, dispatched_at = ctx
    queue_wait = max(0.0, time.monotonic() - dispatched_at)
    payload, threshold = _unwrap_request(payload)
    local = Observability(
        ObservabilityConfig(
            tracing=mode >= TRACE_SPANS,
            metrics=True,
            slow_query_ops=None,
            flight_recorder=False,
        )
    )
    previous = obs_runtime.activate(local)
    started = time.perf_counter()
    try:
        with counters_scope() as scope:
            if local.tracer is not None:
                with local.tracer.span(
                    f"worker.{kind}",
                    kind="worker",
                    pid=os.getpid(),
                    morsel=index,
                ):
                    result = _HANDLERS[kind](payload)
            else:
                result = _HANDLERS[kind](payload)
    finally:
        if previous is None:
            obs_runtime.deactivate()
        else:
            obs_runtime.activate(previous)
    elapsed = time.perf_counter() - started
    if threshold is not None:
        result = _pack_result(kind, result, threshold)
    hits, misses = _deref_tallies(local)
    span_dict: Optional[dict] = None
    if local.tracer is not None:
        root = local.tracer.last()
        if root is not None:
            root.attrs["queue_wait"] = queue_wait
            root.attrs["deref_hits"] = hits
            root.attrs["deref_misses"] = misses
            span_dict = root.to_dict()
    telemetry = (os.getpid(), elapsed, queue_wait, hits, misses, span_dict)
    return result, pack_counts(scope), telemetry


def _deref_tallies(local) -> Tuple[int, int]:
    """(hits, misses) the task flushed into the worker-local registry."""
    if local.metrics is None:
        return 0, 0
    hits = local.metrics.counter(
        "deref_cache_requests_total", outcome="hit"
    ).value
    misses = local.metrics.counter(
        "deref_cache_requests_total", outcome="miss"
    ).value
    return hits, misses
