"""Morsel-driven parallel execution (DESIGN.md section 3.9).

Splits the batch engine's hot operators into partition-aligned morsels
and fans them out to a fork-based process pool (with a deterministic
in-process fallback), merging per-worker Section 3.1 counter scopes so
that totals are identical regardless of worker count:

* :mod:`~repro.query.parallel.transport` — wire encoding (int-pair
  tuple pointers, descriptor specs, plain-predicate checks, morsel
  bounds);
* :mod:`~repro.query.parallel.shm` — the shared-memory transport:
  packed pointer segments, the :class:`~repro.query.parallel.shm.
  ShmArena` lifecycle registry, and the worker-side segment cache
  behind ``configure_execution(transport="shm")``;
* :mod:`~repro.query.parallel.tasks` — worker-side task functions over
  the forked catalog snapshot;
* :mod:`~repro.query.parallel.scheduler` —
  :class:`MorselScheduler`: pool lifecycle, fingerprint-based refork,
  ordered dispatch;
* :mod:`~repro.query.parallel.engine` —
  :class:`ParallelBatchExecutor`, the ``workers > 1`` executor behind
  ``db.configure_execution(engine="batch", workers=N)``;
* :mod:`~repro.query.parallel.build` — two-phase parallel index build
  behind ``Relation.create_index(..., parallel=True)``;
* :mod:`~repro.query.parallel.runtime` — the process-wide scheduler
  slot the storage layer reaches the pool through.
"""

from repro.query.parallel.engine import ParallelBatchExecutor
from repro.query.parallel.scheduler import MorselScheduler, fork_available

__all__ = [
    "MorselScheduler",
    "ParallelBatchExecutor",
    "fork_available",
]
