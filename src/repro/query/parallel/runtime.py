"""Process-wide slot for the active morsel scheduler.

Mirrors :mod:`repro.obs.runtime`: the storage layer must not import the
query engine, so ``Relation.create_index(..., parallel=True)`` reaches
the scheduler through this slot (set by
``MainMemoryDatabase.configure_execution`` when ``workers > 1``)
instead of a direct dependency.  When the slot is empty — or holds a
scheduler for a *different* catalog — parallel index builds degrade to
the in-process two-phase build, which charges the same counters.
"""

from __future__ import annotations

from typing import Any, Optional

_active_scheduler: Optional[Any] = None


def active_scheduler() -> Optional[Any]:
    """The current scheduler, or None."""
    return _active_scheduler


def activate_scheduler(scheduler: Any) -> Optional[Any]:
    """Install ``scheduler``; returns the previous one (if any)."""
    global _active_scheduler
    previous = _active_scheduler
    _active_scheduler = scheduler
    return previous


def deactivate_scheduler(scheduler: Any = None) -> None:
    """Clear the slot (only if it still holds ``scheduler``, when given)."""
    global _active_scheduler
    if scheduler is None or _active_scheduler is scheduler:
        _active_scheduler = None
