"""The morsel scheduler: fans task payloads out to worker processes.

One scheduler serves one catalog.  It owns (at most) one fork-based
``ProcessPoolExecutor`` whose children inherit the catalog snapshot
copy-on-write; the pool is created lazily on the first parallel
dispatch and *re-forked* whenever the catalog fingerprint — every
relation's ``(name, version)``, where versions tick on all DML/DDL —
no longer matches the one the pool was forked under.  Forked-late
workers are safe for the same reason: an unchanged fingerprint means
logically unchanged data.

Platforms without ``fork`` (and sandboxes whose process pools break at
runtime) degrade to the **inline executor**: the same task functions
run in-process, in the same isolated counter scopes, producing
bit-identical results and counts — only the wall-clock parallelism is
lost.  ``pool="inline"`` forces that mode deterministically for tests
and CI.
"""

from __future__ import annotations

import itertools
import multiprocessing
from typing import Any, List, Optional, Tuple

from repro.query.parallel import tasks
from repro.query.vectorized.config import DEFAULT_MORSEL_SIZE

#: Process-wide token source for catalog registration slots.
_token_counter = itertools.count(1)


def fork_available() -> bool:
    """Can this platform fork worker processes?"""
    return "fork" in multiprocessing.get_all_start_methods()


class MorselScheduler:
    """Dispatches morsel tasks for one catalog, merging nothing itself.

    ``run`` preserves payload order: result *i* corresponds to payload
    *i*, so per-morsel outputs concatenate back into the scalar
    engine's row order and per-morsel counts merge in a deterministic
    order.
    """

    def __init__(
        self,
        catalog: Any,
        workers: int,
        pool_mode: str = "auto",
        morsel_size: int = DEFAULT_MORSEL_SIZE,
    ) -> None:
        self.catalog = catalog
        self.workers = int(workers)
        self.pool_mode = pool_mode
        #: Morsel granularity for dispatchers without their own setting
        #: (e.g. the parallel index build reaching through the runtime
        #: slot); the engine passes its configured value through.
        self.morsel_size = int(morsel_size)
        self.token = next(_token_counter)
        tasks.register_catalog(self.token, catalog)
        self._pool = None
        self._pool_fingerprint: Optional[tuple] = None
        self._blob_ids = itertools.count(1)
        #: Why the last process-pool attempt fell back inline, if it did.
        self.fallback_reason: Optional[str] = None
        self.stats = {
            "pool_forks": 0,
            "process_runs": 0,
            "inline_runs": 0,
            "morsels": 0,
        }

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #

    def fingerprint(self) -> tuple:
        """Every relation's (name, version): the pool-validity stamp."""
        return tuple(
            (relation.name, relation.version) for relation in self.catalog
        )

    def next_blob_id(self) -> int:
        """A fresh id for a broadcast blob (worker-side decode cache)."""
        return next(self._blob_ids)

    def _ensure_pool(self):
        fingerprint = self.fingerprint()
        if (
            self._pool is not None
            and fingerprint == self._pool_fingerprint
        ):
            return self._pool
        self._discard_pool()
        if not fork_available():
            self.fallback_reason = "no fork start method on this platform"
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        except Exception as exc:  # pragma: no cover - sandbox-dependent
            self.fallback_reason = f"pool creation failed: {exc!r}"
            return None
        self._pool = pool
        self._pool_fingerprint = fingerprint
        self.stats["pool_forks"] += 1
        return pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            # wait=True joins the workers and the pool's management
            # thread; detached pools otherwise trip the interpreter's
            # atexit hook on already-closed pipes.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_fingerprint = None

    def close(self) -> None:
        """Shut the pool down and release the catalog slot."""
        self._discard_pool()
        tasks.release_catalog(self.token)

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def run(
        self, kind: str, payloads: List[tuple]
    ) -> List[Tuple[Any, tuple]]:
        """Run every ``(kind, payload)`` task; results in payload order.

        Each element of the returned list is ``(result, packed_counts)``
        exactly as :func:`repro.query.parallel.tasks.run_task` returns
        it.  A broken or unavailable process pool degrades to inline
        execution of the same tasks — identical results and counts.
        """
        self.stats["morsels"] += len(payloads)
        if self.pool_mode != "inline":
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    futures = [
                        pool.submit(tasks.run_task, (kind, payload))
                        for payload in payloads
                    ]
                    results = [future.result() for future in futures]
                    self.stats["process_runs"] += 1
                    return results
                except Exception as exc:
                    # BrokenProcessPool and friends: the snapshot in the
                    # parent is authoritative, so rerun inline.
                    self.fallback_reason = f"pool dispatch failed: {exc!r}"
                    self._discard_pool()
        self.stats["inline_runs"] += 1
        return [tasks.run_task((kind, payload)) for payload in payloads]
