"""The morsel scheduler: fans task payloads out to worker processes.

One scheduler serves one catalog.  It owns (at most) one fork-based
``ProcessPoolExecutor`` whose children inherit the catalog snapshot
copy-on-write; the pool is created lazily on the first parallel
dispatch and *re-forked* whenever the catalog fingerprint — every
relation's ``(name, version)``, where versions tick on all DML/DDL —
no longer matches the one the pool was forked under.  Forked-late
workers are safe for the same reason: an unchanged fingerprint means
logically unchanged data.

**Self-healing.**  Failures are handled per morsel, not per run: a
morsel whose future fails (a worker exception, a died worker process, a
gather timeout) is retried through the pool up to ``retry_attempts``
total runs, with the pool re-forked first whenever it broke.  A morsel
that exhausts the pool budget is *quarantined*: only it re-executes
inline, while every already-gathered result is kept.  If even the
inline run fails, the query dies with a typed
:class:`~repro.errors.PoisonedMorselError` naming the morsel — the
failure is the morsel's, not the pool's.  Because tasks are pure
functions of the catalog snapshot and their payload, a retried morsel
returns bit-identical ``(result, packed_counts)``; with fault injection
active the scheduler re-verifies that differentially after every
successful pool retry.

Platforms without ``fork`` (and sandboxes whose process pools break at
runtime) degrade to the **inline executor**: the same task functions
run in-process, in the same isolated counter scopes, producing
bit-identical results and counts — only the wall-clock parallelism is
lost.  ``pool="inline"`` forces that mode deterministically for tests
and CI.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InjectedFaultError, PoisonedMorselError
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from repro.query.parallel import tasks
from repro.query.vectorized.config import (
    DEFAULT_MORSEL_SIZE,
    DEFAULT_RETRY_ATTEMPTS,
)

#: Process-wide token source for catalog registration slots.
_token_counter = itertools.count(1)


def fork_available() -> bool:
    """Can this platform fork worker processes?"""
    return "fork" in multiprocessing.get_all_start_methods()


def _metric(name: str, amount: int = 1, **labels) -> None:
    """Bump a scheduler metric when observability is active."""
    if amount:
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(name, amount, **labels)


class MorselScheduler:
    """Dispatches morsel tasks for one catalog, merging nothing itself.

    ``run`` preserves payload order: result *i* corresponds to payload
    *i*, so per-morsel outputs concatenate back into the scalar
    engine's row order and per-morsel counts merge in a deterministic
    order.
    """

    def __init__(
        self,
        catalog: Any,
        workers: int,
        pool_mode: str = "auto",
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        retry_attempts: int = DEFAULT_RETRY_ATTEMPTS,
        retry_timeout: float = 0.0,
        verify_retries: Optional[bool] = None,
    ) -> None:
        self.catalog = catalog
        self.workers = int(workers)
        self.pool_mode = pool_mode
        #: Morsel granularity for dispatchers without their own setting
        #: (e.g. the parallel index build reaching through the runtime
        #: slot); the engine passes its configured value through.
        self.morsel_size = int(morsel_size)
        #: Pool runs per morsel before quarantine (first run included).
        self.retry_attempts = max(1, int(retry_attempts))
        #: Seconds to wait for one morsel result; 0 waits forever.
        self.retry_timeout = float(retry_timeout)
        #: Re-run successfully retried morsels inline and assert the
        #: results and packed counts are identical (the counter-merge
        #: determinism contract).  None = automatic: on exactly when
        #: fault injection is active.
        self.verify_retries = verify_retries
        self.token = next(_token_counter)
        tasks.register_catalog(self.token, catalog)
        self._pool = None
        self._pool_fingerprint: Optional[tuple] = None
        self._blob_ids = itertools.count(1)
        #: Why the last run fell back inline (verbose, None when the
        #: last run stayed on the pool).  Reset at the start of every
        #: ``run`` so a stale reason never outlives the run it blames.
        self.fallback_reason: Optional[str] = None
        #: Short label for the same fallback, used as a metric label.
        self.fallback_code: Optional[str] = None
        self.stats = {
            "pool_forks": 0,
            "pool_reforks": 0,
            "process_runs": 0,
            "inline_runs": 0,
            "morsels": 0,
            "morsel_retries": 0,
            "quarantined_morsels": 0,
            "verified_retries": 0,
        }

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #

    def fingerprint(self) -> tuple:
        """Every relation's (name, version): the pool-validity stamp."""
        return tuple(
            (relation.name, relation.version) for relation in self.catalog
        )

    def next_blob_id(self) -> int:
        """A fresh id for a broadcast blob (worker-side decode cache)."""
        return next(self._blob_ids)

    def _ensure_pool(self):
        fingerprint = self.fingerprint()
        if (
            self._pool is not None
            and fingerprint == self._pool_fingerprint
        ):
            return self._pool
        self._discard_pool()
        if not fork_available():
            self._note_fallback(
                "no-fork", "no fork start method on this platform"
            )
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        except Exception as exc:  # pragma: no cover - sandbox-dependent
            self._note_fallback(
                "pool-create-failed", f"pool creation failed: {exc!r}"
            )
            return None
        self._pool = pool
        self._pool_fingerprint = fingerprint
        self.stats["pool_forks"] += 1
        return pool

    def _refork_pool(self):
        """Replace a broken pool with a fresh fork, or None."""
        self._discard_pool()
        pool = self._ensure_pool()
        if pool is not None:
            self.stats["pool_reforks"] += 1
            _metric("pool_reforks_total")
        return pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            # wait=True joins the workers and the pool's management
            # thread; detached pools otherwise trip the interpreter's
            # atexit hook on already-closed pipes.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_fingerprint = None

    def close(self) -> None:
        """Shut the pool down and release the catalog slot."""
        self._discard_pool()
        tasks.release_catalog(self.token)

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # failure bookkeeping
    # ------------------------------------------------------------------ #

    def _note_fallback(self, code: str, reason: str) -> None:
        self.fallback_code = code
        self.fallback_reason = reason
        _metric("scheduler_fallback_total", reason=code)

    def _verify_retries_active(self) -> bool:
        if self.verify_retries is None:
            return fault_runtime.active() is not None
        return bool(self.verify_retries)

    def _worker_fault(self, kind: str, index: int) -> Optional[str]:
        """The parent-side ``pool.worker`` decision for one dispatch.

        Returns the action to apply ("error" | "kill" | None).  The
        decision is made here, in the parent, so the injector's seeded
        RNG stays in one process and the fault sequence is replayable
        regardless of worker scheduling.
        """
        injector = fault_runtime.active()
        if injector is None:
            return None
        try:
            action = injector.fire("pool.worker", kind=kind, morsel=index)
        except InjectedFaultError:
            return "error"
        return action if action == "kill" else None

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def run(
        self, kind: str, payloads: List[tuple]
    ) -> List[Tuple[Any, tuple]]:
        """Run every ``(kind, payload)`` task; results in payload order.

        Each element of the returned list is ``(result, packed_counts)``
        exactly as :func:`repro.query.parallel.tasks.run_task` returns
        it.  Per-morsel failures retry through the pool (re-forking it
        when it broke) up to the retry budget, then quarantine to one
        inline re-execution; a broken or unavailable pool degrades the
        whole run to inline execution of the same tasks — identical
        results and counts either way.
        """
        self.fallback_reason = None
        self.fallback_code = None
        self.stats["morsels"] += len(payloads)
        if self.pool_mode != "inline":
            results = self._run_pooled(kind, payloads)
            if results is not None:
                self.stats["process_runs"] += 1
                return results
        self.stats["inline_runs"] += 1
        return [
            self._run_inline_one(kind, index, payload)
            for index, payload in enumerate(payloads)
        ]

    # ------------------------------------------------------------------ #
    # pooled path
    # ------------------------------------------------------------------ #

    def _run_pooled(
        self, kind: str, payloads: List[tuple]
    ) -> Optional[List[Tuple[Any, tuple]]]:
        """All results via the pool, or None for a whole-run fallback.

        Per-morsel retries happen in rounds: every still-pending morsel
        is submitted, the futures gather individually (so one failure
        no longer discards its siblings' results), and only the failed
        morsels carry into the next round.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None
        injector = fault_runtime.active()
        if injector is not None:
            try:
                injector.fire(
                    "pool.dispatch", kind=kind, morsels=len(payloads)
                )
            except InjectedFaultError as exc:
                # The dispatch path itself is down; the parent snapshot
                # is authoritative, so the whole run degrades inline.
                self._note_fallback(
                    "injected-dispatch-fault",
                    f"injected dispatch fault: {exc}",
                )
                return None
        results: List[Optional[Tuple[Any, tuple]]] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        pending = list(range(len(payloads)))
        retried_ok: List[int] = []
        quarantined: List[int] = []
        timeout = self.retry_timeout or None
        while pending:
            futures: Dict[int, Any] = {}
            pool_broke = False
            for index in pending:
                action = self._worker_fault(kind, index)
                task_fn = {
                    None: tasks.run_task,
                    "error": tasks.injected_failure,
                    "kill": tasks.worker_exit,
                }[action]
                try:
                    futures[index] = pool.submit(
                        task_fn, (kind, payloads[index])
                    )
                except Exception:
                    # submit() only fails when the pool itself is gone;
                    # unsubmitted morsels simply stay pending.
                    pool_broke = True
                    break
            failed: List[int] = []
            for index in pending:
                future = futures.get(index)
                if future is None:
                    failed.append(index)
                    continue
                try:
                    results[index] = future.result(timeout=timeout)
                    if attempts[index] > 0:
                        retried_ok.append(index)
                except concurrent.futures.TimeoutError:
                    # The worker may be wedged on this morsel; give up
                    # on the whole pool rather than on the morsel.
                    future.cancel()
                    pool_broke = True
                    failed.append(index)
                except Exception as exc:
                    failed.append(index)
                    if self._broken_pool_error(exc):
                        pool_broke = True
            pending = []
            for index in failed:
                attempts[index] += 1
                if attempts[index] >= self.retry_attempts:
                    quarantined.append(index)
                else:
                    pending.append(index)
                    self.stats["morsel_retries"] += 1
                    _metric("morsel_retries_total", kind=kind)
            if pool_broke:
                if pending:
                    pool = self._refork_pool()
                    if pool is None:
                        # No pool to retry against: everything unfinished
                        # is quarantined to the inline executor.
                        quarantined.extend(pending)
                        pending = []
                else:
                    # Nothing left to retry; don't leave a broken pool
                    # for the next run to trip over.
                    self._discard_pool()
        for index in quarantined:
            self.stats["quarantined_morsels"] += 1
            _metric("quarantined_morsels_total", kind=kind)
            results[index] = self._run_inline_one(
                kind, index, payloads[index], budget=1
            )
        if retried_ok and self._verify_retries_active():
            self._verify_retried(kind, payloads, results, retried_ok)
        return results

    @staticmethod
    def _broken_pool_error(exc: BaseException) -> bool:
        # BrokenProcessPool subclasses BrokenExecutor; anything else
        # raised by a future is the task's own failure.
        return isinstance(exc, concurrent.futures.BrokenExecutor)

    def _verify_retried(
        self,
        kind: str,
        payloads: List[tuple],
        results: List[Tuple[Any, tuple]],
        indices: List[int],
    ) -> None:
        """Differential check: a retried morsel must be bit-identical.

        Tasks are pure functions of (catalog snapshot, payload), so a
        retry that succeeded must return exactly what the first attempt
        would have — result *and* packed counts.  Re-running inline (an
        isolated counter scope, no charges leak) and comparing proves
        the merged Section 3.1 totals are unaffected by retries.
        """
        for index in indices:
            replay = tasks.run_task((kind, payloads[index]))
            if replay != results[index]:
                raise AssertionError(
                    f"retried morsel {index} of {kind!r} diverged from "
                    f"its inline replay — the counter-merge determinism "
                    f"contract is broken"
                )
            self.stats["verified_retries"] += 1
            _metric("verified_retries_total", kind=kind)

    # ------------------------------------------------------------------ #
    # inline path
    # ------------------------------------------------------------------ #

    def _run_inline_one(
        self,
        kind: str,
        index: int,
        payload: tuple,
        budget: Optional[int] = None,
    ) -> Tuple[Any, tuple]:
        """One morsel inline, with the same bounded retry semantics.

        ``pool.worker`` faults apply here too (both actions surface as
        :class:`InjectedFaultError` — there is no process to kill), so
        chaos runs exercise retry even under ``pool="inline"``.  After
        the budget the morsel is poisoned.
        """
        remaining = self.retry_attempts if budget is None else max(1, budget)
        last: Optional[BaseException] = None
        for attempt in range(remaining):
            try:
                action = self._worker_fault(kind, index)
                if action is not None:
                    raise InjectedFaultError("pool.worker", action)
                return tasks.run_task((kind, payload))
            except Exception as exc:
                last = exc
                if attempt + 1 < remaining:
                    self.stats["morsel_retries"] += 1
                    _metric("morsel_retries_total", kind=kind)
        _metric("poisoned_morsels_total", kind=kind)
        raise PoisonedMorselError(kind, index, repr(last)) from last
