"""The morsel scheduler: fans task payloads out to worker processes.

One scheduler serves one catalog.  It owns (at most) one fork-based
``ProcessPoolExecutor`` whose children inherit the catalog snapshot
copy-on-write; the pool is created lazily on the first parallel
dispatch and *re-forked* whenever the catalog fingerprint — every
relation's ``(name, version)``, where versions tick on all DML/DDL —
no longer matches the one the pool was forked under.  Forked-late
workers are safe for the same reason: an unchanged fingerprint means
logically unchanged data.

**Self-healing.**  Failures are handled per morsel, not per run: a
morsel whose future fails (a worker exception, a died worker process, a
gather timeout) is retried through the pool up to ``retry_attempts``
total runs, with the pool re-forked first whenever it broke.  A morsel
that exhausts the pool budget is *quarantined*: only it re-executes
inline, while every already-gathered result is kept.  If even the
inline run fails, the query dies with a typed
:class:`~repro.errors.PoisonedMorselError` naming the morsel — the
failure is the morsel's, not the pool's.  Because tasks are pure
functions of the catalog snapshot and their payload, a retried morsel
returns bit-identical ``(result, packed_counts)``; with fault injection
active the scheduler re-verifies that differentially after every
successful pool retry.

Platforms without ``fork`` (and sandboxes whose process pools break at
runtime) degrade to the **inline executor**: the same task functions
run in-process, in the same isolated counter scopes, producing
bit-identical results and counts — only the wall-clock parallelism is
lost.  ``pool="inline"`` forces that mode deterministically for tests
and CI.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import pickle
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import InjectedFaultError, PoisonedMorselError
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from repro.query.parallel import shm, tasks
from repro.query.parallel.transport import (
    TRACE_SPANS,
    TRACE_TELEMETRY,
    trace_request,
)
from repro.query.vectorized.config import (
    DEFAULT_MORSEL_SIZE,
    DEFAULT_RETRY_ATTEMPTS,
)

#: Process-wide token source for catalog registration slots.
_token_counter = itertools.count(1)


def fork_available() -> bool:
    """Can this platform fork worker processes?"""
    return "fork" in multiprocessing.get_all_start_methods()


def _metric(name: str, amount: int = 1, **labels) -> None:
    """Bump a scheduler metric when observability is active."""
    if amount:
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(name, amount, **labels)


class MorselScheduler:
    """Dispatches morsel tasks for one catalog, merging nothing itself.

    ``run`` preserves payload order: result *i* corresponds to payload
    *i*, so per-morsel outputs concatenate back into the scalar
    engine's row order and per-morsel counts merge in a deterministic
    order.
    """

    def __init__(
        self,
        catalog: Any,
        workers: int,
        pool_mode: str = "auto",
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        retry_attempts: int = DEFAULT_RETRY_ATTEMPTS,
        retry_timeout: float = 0.0,
        verify_retries: Optional[bool] = None,
        transport: str = "pickle",
        retry_backoff=None,
    ) -> None:
        self.catalog = catalog
        self.workers = int(workers)
        self.pool_mode = pool_mode
        #: Which morsel transport the engine resolved ("pickle"|"shm");
        #: purely descriptive here — the engine builds the payloads —
        #: but surfaced through ``scheduler_stats()``.
        self.transport = transport
        #: Measure per-morsel pipe bytes even without observability
        #: (benchmarks flip this; measuring means pickling every payload
        #: a second time, so it must never be the default).
        self.measure_bytes = False
        #: Morsel granularity for dispatchers without their own setting
        #: (e.g. the parallel index build reaching through the runtime
        #: slot); the engine passes its configured value through.
        self.morsel_size = int(morsel_size)
        #: Pool runs per morsel before quarantine (first run included).
        self.retry_attempts = max(1, int(retry_attempts))
        #: Seconds to wait for one morsel result; 0 waits forever.
        self.retry_timeout = float(retry_timeout)
        #: Slept between retry rounds (pooled) / attempts (inline).  The
        #: default NO_BACKOFF retries immediately, exactly the historic
        #: fixed-delay-of-zero behaviour.
        from repro.fault.backoff import NO_BACKOFF

        self.retry_backoff = (
            retry_backoff if retry_backoff is not None else NO_BACKOFF
        )
        #: Re-run successfully retried morsels inline and assert the
        #: results and packed counts are identical (the counter-merge
        #: determinism contract).  None = automatic: on exactly when
        #: fault injection is active.
        self.verify_retries = verify_retries
        self.token = next(_token_counter)
        tasks.register_catalog(self.token, catalog)
        self._closed = False
        self._pool = None
        self._pool_fingerprint: Optional[tuple] = None
        self._blob_ids = itertools.count(1)
        #: Why the last run fell back inline (verbose, None when the
        #: last run stayed on the pool).  Reset at the start of every
        #: ``run`` so a stale reason never outlives the run it blames.
        self.fallback_reason: Optional[str] = None
        #: Short label for the same fallback, used as a metric label.
        self.fallback_code: Optional[str] = None
        self.stats = {
            "pool_forks": 0,
            "pool_reforks": 0,
            "process_runs": 0,
            "inline_runs": 0,
            "morsels": 0,
            "morsel_retries": 0,
            "quarantined_morsels": 0,
            "verified_retries": 0,
            # Pipe traffic, measured only when observability is active
            # or ``measure_bytes`` is set: what actually crossed the
            # pool pipe, pickled — descriptors in shm mode, full
            # payloads in pickle mode.
            "dispatch_bytes": 0,
            "result_bytes": 0,
        }
        #: Per-worker telemetry accumulated from traced runs, keyed by
        #: worker pid: morsels, busy/queue-wait seconds, deref-cache
        #: hit/miss tallies and hit rate, retried/quarantined morsel
        #: attribution.  Empty until observability is active (telemetry
        #: only ships with a trace context — the zero-overhead contract).
        self.worker_stats: Dict[int, Dict[str, Any]] = {}
        #: Per-run fault/retry report for the most recent ``run`` call:
        #: ``{"kind", "faults": {morsel: [actions]}, "retries":
        #: {morsel: n}, "quarantined": {morsel, ...}}`` — consumed by
        #: the engine to annotate ``<op>.morsel`` spans so injected
        #: fault events survive the worker→coordinator round-trip.
        self.last_run: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #

    def fingerprint(self) -> tuple:
        """Every relation's (name, version): the pool-validity stamp."""
        return tuple(
            (relation.name, relation.version) for relation in self.catalog
        )

    def next_blob_id(self) -> int:
        """A fresh id for a broadcast blob (worker-side decode cache)."""
        return next(self._blob_ids)

    def _ensure_pool(self):
        fingerprint = self.fingerprint()
        if (
            self._pool is not None
            and fingerprint == self._pool_fingerprint
        ):
            return self._pool
        self._discard_pool()
        if not fork_available():
            self._note_fallback(
                "no-fork", "no fork start method on this platform"
            )
            return None
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        except Exception as exc:  # pragma: no cover - sandbox-dependent
            self._note_fallback(
                "pool-create-failed", f"pool creation failed: {exc!r}"
            )
            return None
        self._pool = pool
        self._pool_fingerprint = fingerprint
        self.stats["pool_forks"] += 1
        return pool

    def _refork_pool(self):
        """Replace a broken pool with a fresh fork, or None."""
        self._discard_pool()
        pool = self._ensure_pool()
        if pool is not None:
            self.stats["pool_reforks"] += 1
            _metric("pool_reforks_total")
        return pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            # wait=True joins the workers and the pool's management
            # thread; detached pools otherwise trip the interpreter's
            # atexit hook on already-closed pipes.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_fingerprint = None

    def close(self) -> None:
        """Shut the pool down and release the catalog slot.

        Idempotent: ``__del__`` closes too, and a second release must
        not pop a token a later scheduler may have been handed (tests
        pin tokens to compare wire captures across instances).
        """
        if self._closed:
            return
        self._closed = True
        self._discard_pool()
        tasks.release_catalog(self.token)

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # failure bookkeeping
    # ------------------------------------------------------------------ #

    def _note_fallback(self, code: str, reason: str) -> None:
        self.fallback_code = code
        self.fallback_reason = reason
        _metric("scheduler_fallback_total", reason=code)

    def _verify_retries_active(self) -> bool:
        if self.verify_retries is None:
            return fault_runtime.active() is not None
        return bool(self.verify_retries)

    def _worker_fault(self, kind: str, index: int) -> Optional[str]:
        """The parent-side ``pool.worker`` decision for one dispatch.

        Returns the action to apply ("error" | "kill" | None).  The
        decision is made here, in the parent, so the injector's seeded
        RNG stays in one process and the fault sequence is replayable
        regardless of worker scheduling.
        """
        injector = fault_runtime.active()
        if injector is None:
            return None
        try:
            action = injector.fire("pool.worker", kind=kind, morsel=index)
        except InjectedFaultError:
            self._note_fault(index, "error")
            return "error"
        if action is not None:
            self._note_fault(index, action)
        return action if action == "kill" else None

    def _note_fault(self, index: int, action: str) -> None:
        """Record one fired ``pool.worker`` action in the run report."""
        if self.last_run is not None:
            self.last_run["faults"].setdefault(index, []).append(action)

    def _note_retry(self, index: int) -> None:
        """Record one morsel retry in both stats and the run report."""
        self.stats["morsel_retries"] += 1
        if self.last_run is not None:
            retries = self.last_run["retries"]
            retries[index] = retries.get(index, 0) + 1

    def _trace_mode(self) -> int:
        """Which trace context (if any) this run's requests carry.

        0 when observability is inactive — requests stay two-element
        and the whole telemetry path stays untouched, preserving the
        zero-overhead contract; otherwise telemetry always, spans only
        when a tracer is live (EXPLAIN ANALYZE, ``tracing=True``).
        """
        obs = obs_runtime.active()
        if obs is None:
            return 0
        return TRACE_SPANS if obs.tracer is not None else TRACE_TELEMETRY

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def run(
        self, kind: str, payloads: List[tuple]
    ) -> List[Tuple[Any, tuple]]:
        """Run every ``(kind, payload)`` task; results in payload order.

        Each element of the returned list is ``(result, packed_counts)``
        exactly as :func:`repro.query.parallel.tasks.run_task` returns
        it — plus a trailing telemetry tuple when observability is
        active (callers unpack the first two elements and pass the rest
        to the span-grafting merge).  Per-morsel failures retry through
        the pool (re-forking it when it broke) up to the retry budget,
        then quarantine to one inline re-execution; a broken or
        unavailable pool degrades the whole run to inline execution of
        the same tasks — identical results and counts either way.
        """
        self.fallback_reason = None
        self.fallback_code = None
        self.last_run = {
            "kind": kind,
            "faults": {},
            "retries": {},
            "quarantined": set(),
            "payload_bytes": {},
            "transport": {},
        }
        mode = self._trace_mode()
        measure = bool(mode) or self.measure_bytes
        if measure:
            self._measure_dispatch(kind, payloads)
        self.stats["morsels"] += len(payloads)
        results: Optional[List[Tuple[Any, tuple]]] = None
        if self.pool_mode != "inline":
            results = self._run_pooled(kind, payloads, mode)
            if results is not None:
                self.stats["process_runs"] += 1
        if results is None:
            self.stats["inline_runs"] += 1
            results = []
            try:
                for index, payload in enumerate(payloads):
                    results.append(
                        self._run_inline_one(kind, index, payload, mode=mode)
                    )
            except BaseException:
                # A poisoned morsel aborts the query; packed result
                # segments already gathered were ownership-transferred
                # to this coordinator and must not outlive it.
                self._reap_packed(results)
                raise
        if measure:
            self._measure_results(results)
        if mode:
            self._absorb_telemetry(kind, results)
        return results

    # ------------------------------------------------------------------ #
    # pipe-byte accounting
    # ------------------------------------------------------------------ #

    @staticmethod
    def _payload_transport(payload: Any) -> str:
        """"shm" for a wrapped shm-protocol payload, else "pickle"."""
        if (
            type(payload) is tuple
            and len(payload) == 3
            and payload[0] == shm.REQUEST_TAG
        ):
            return "shm"
        return "pickle"

    def _measure_dispatch(
        self, kind: str, payloads: List[tuple]
    ) -> None:
        """Tally what dispatch actually sends through the pool pipe.

        Re-pickles each request exactly as ``pool.submit`` would, so
        the number is the true pipe cost: in shm mode, descriptors are
        tiny and the packed rows never appear here — which is the
        entire point of the transport.  Only runs when observability is
        active or ``measure_bytes`` is set (re-pickling is not free).
        """
        last_run = self.last_run or {}
        per_morsel = last_run.setdefault("payload_bytes", {})
        labels = last_run.setdefault("transport", {})
        for index, payload in enumerate(payloads):
            nbytes = len(
                pickle.dumps(
                    (kind, payload), protocol=pickle.HIGHEST_PROTOCOL
                )
            )
            label = self._payload_transport(payload)
            per_morsel[index] = nbytes
            labels[index] = label
            self.stats["dispatch_bytes"] += nbytes
            _metric(
                "transport_bytes_total",
                nbytes,
                path="dispatch",
                transport=label,
            )

    def _measure_results(
        self, results: List[Tuple[Any, tuple]]
    ) -> None:
        """Tally the return pipe and refresh the segment gauge."""
        last_run = self.last_run or {}
        per_morsel = last_run.setdefault("payload_bytes", {})
        for index, item in enumerate(results):
            nbytes = len(
                pickle.dumps(
                    tuple(item[:2]), protocol=pickle.HIGHEST_PROTOCOL
                )
            )
            label = "shm" if shm.is_rows(item[0]) else "pickle"
            per_morsel[index] = per_morsel.get(index, 0) + nbytes
            self.stats["result_bytes"] += nbytes
            _metric(
                "transport_bytes_total",
                nbytes,
                path="result",
                transport=label,
            )

    # ------------------------------------------------------------------ #
    # telemetry absorption
    # ------------------------------------------------------------------ #

    def _absorb_telemetry(
        self, kind: str, results: List[Tuple[Any, tuple]]
    ) -> None:
        """Fold traced results' telemetry into per-worker stats/metrics.

        Runs only on traced runs (``mode`` nonzero), after every morsel
        has gathered.  Two sinks: ``worker_stats`` (the cumulative
        per-pid dict surfaced through ``db.scheduler_stats()``) and,
        when observability metrics are active, ``worker``-labelled
        series in the registry.  The coordinator-level deref counters
        are re-published here too: traced tasks flush their deref
        tallies into the *worker-local* registry (which dies with the
        worker, or is read back below), so without this the global
        ``deref_cache_requests_total`` would go dark whenever telemetry
        is on.
        """
        obs = obs_runtime.active()
        metrics = obs.metrics if obs is not None else None
        buckets = (
            obs.config.worker_morsel_buckets if obs is not None else (1.0,)
        )
        last_run = self.last_run or {}
        retries = last_run.get("retries", {})
        quarantined = last_run.get("quarantined", set())
        for index, item in enumerate(results):
            if len(item) < 3:
                continue
            pid, elapsed, queue_wait, hits, misses, _span = item[2]
            stats = self.worker_stats.setdefault(
                pid,
                {
                    "morsels": 0,
                    "busy_seconds": 0.0,
                    "queue_wait_seconds": 0.0,
                    "deref_hits": 0,
                    "deref_misses": 0,
                    "deref_hit_rate": None,
                    "retried_morsels": 0,
                    "quarantined_morsels": 0,
                },
            )
            stats["morsels"] += 1
            stats["busy_seconds"] += elapsed
            stats["queue_wait_seconds"] += queue_wait
            stats["deref_hits"] += hits
            stats["deref_misses"] += misses
            requests = stats["deref_hits"] + stats["deref_misses"]
            stats["deref_hit_rate"] = (
                stats["deref_hits"] / requests if requests else None
            )
            stats["retried_morsels"] += retries.get(index, 0)
            if index in quarantined:
                stats["quarantined_morsels"] += 1
            if metrics is not None:
                metrics.counter(
                    "worker_morsels_total",
                    "Morsels completed per worker process",
                    worker=pid,
                    kind=kind,
                ).inc()
                metrics.histogram(
                    "worker_morsel_seconds",
                    buckets,
                    "Per-morsel wall-clock per worker process",
                    worker=pid,
                ).observe(elapsed)
                metrics.gauge(
                    "worker_queue_wait_seconds_total",
                    "Cumulative dispatch-to-start wait per worker",
                    worker=pid,
                ).inc(queue_wait)
                if hits:
                    metrics.counter(
                        "worker_deref_cache_requests_total",
                        "Worker-side deref-cache lookups by outcome",
                        worker=pid,
                        outcome="hit",
                    ).inc(hits)
                    metrics.counter(
                        "deref_saved_traversals_total", "",
                    ).inc(hits)
                    metrics.counter(
                        "deref_cache_requests_total", "", outcome="hit"
                    ).inc(hits)
                if misses:
                    metrics.counter(
                        "worker_deref_cache_requests_total",
                        "Worker-side deref-cache lookups by outcome",
                        worker=pid,
                        outcome="miss",
                    ).inc(misses)
                    metrics.counter(
                        "deref_cache_requests_total", "", outcome="miss"
                    ).inc(misses)

    # ------------------------------------------------------------------ #
    # pooled path
    # ------------------------------------------------------------------ #

    def _run_pooled(
        self, kind: str, payloads: List[tuple], mode: int = 0
    ) -> Optional[List[Tuple[Any, tuple]]]:
        """All results via the pool, or None for a whole-run fallback.

        Per-morsel retries happen in rounds: every still-pending morsel
        is submitted, the futures gather individually (so one failure
        no longer discards its siblings' results), and only the failed
        morsels carry into the next round.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None
        injector = fault_runtime.active()
        if injector is not None:
            try:
                injector.fire(
                    "pool.dispatch", kind=kind, morsels=len(payloads)
                )
            except InjectedFaultError as exc:
                # The dispatch path itself is down; the parent snapshot
                # is authoritative, so the whole run degrades inline.
                self._note_fallback(
                    "injected-dispatch-fault",
                    f"injected dispatch fault: {exc}",
                )
                return None
        results: List[Optional[Tuple[Any, tuple]]] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        pending = list(range(len(payloads)))
        retried_ok: List[int] = []
        quarantined: List[int] = []
        timeout = self.retry_timeout or None
        retry_round = 0
        while pending:
            if retry_round:
                # Between retry rounds, not before the first: the
                # configured backoff paces re-dispatch of failed morsels.
                self.retry_backoff.sleep(retry_round - 1)
            retry_round += 1
            futures: Dict[int, Any] = {}
            pool_broke = False
            for index in pending:
                action = self._worker_fault(kind, index)
                task_fn = {
                    None: tasks.run_task,
                    "error": tasks.injected_failure,
                    "kill": tasks.worker_exit,
                }[action]
                try:
                    # The dispatch stamp is taken per submit (retries
                    # included) so queue wait measures this attempt's
                    # time on the pool's queue, not the whole retry saga.
                    futures[index] = pool.submit(
                        task_fn,
                        trace_request(
                            kind, payloads[index], mode, index,
                            time.monotonic(),
                        ),
                    )
                except Exception:
                    # submit() only fails when the pool itself is gone;
                    # unsubmitted morsels simply stay pending.
                    pool_broke = True
                    break
            failed: List[int] = []
            for index in pending:
                future = futures.get(index)
                if future is None:
                    failed.append(index)
                    continue
                try:
                    results[index] = future.result(timeout=timeout)
                    if attempts[index] > 0:
                        retried_ok.append(index)
                except concurrent.futures.TimeoutError:
                    # The worker may be wedged on this morsel; give up
                    # on the whole pool rather than on the morsel.
                    future.cancel()
                    pool_broke = True
                    failed.append(index)
                except Exception as exc:
                    failed.append(index)
                    if self._broken_pool_error(exc):
                        pool_broke = True
            pending = []
            for index in failed:
                attempts[index] += 1
                if attempts[index] >= self.retry_attempts:
                    quarantined.append(index)
                else:
                    pending.append(index)
                    self._note_retry(index)
                    _metric("morsel_retries_total", kind=kind)
            if pool_broke:
                if pending:
                    pool = self._refork_pool()
                    if pool is None:
                        # No pool to retry against: everything unfinished
                        # is quarantined to the inline executor.
                        quarantined.extend(pending)
                        pending = []
                else:
                    # Nothing left to retry; don't leave a broken pool
                    # for the next run to trip over.
                    self._discard_pool()
        try:
            for index in quarantined:
                self.stats["quarantined_morsels"] += 1
                if self.last_run is not None:
                    self.last_run["quarantined"].add(index)
                _metric("quarantined_morsels_total", kind=kind)
                results[index] = self._run_inline_one(
                    kind, index, payloads[index], budget=1, mode=mode
                )
            if retried_ok and self._verify_retries_active():
                self._verify_retried(kind, payloads, results, retried_ok)
        except BaseException:
            # Poisoning (or a failed retry verification) aborts the
            # query; reap the packed result segments that were already
            # transferred to this coordinator.
            self._reap_packed(results)
            raise
        return results

    @staticmethod
    def _reap_packed(results) -> None:
        """Unlink every packed result segment in a doomed result set."""
        for item in results:
            if item is not None and shm.is_rows(item[0]):
                shm.arena().unlink(item[0][1])

    @staticmethod
    def _broken_pool_error(exc: BaseException) -> bool:
        # BrokenProcessPool subclasses BrokenExecutor; anything else
        # raised by a future is the task's own failure.
        return isinstance(exc, concurrent.futures.BrokenExecutor)

    def _verify_retried(
        self,
        kind: str,
        payloads: List[tuple],
        results: List[Tuple[Any, tuple]],
        indices: List[int],
    ) -> None:
        """Differential check: a retried morsel must be bit-identical.

        Tasks are pure functions of (catalog snapshot, payload), so a
        retry that succeeded must return exactly what the first attempt
        would have — result *and* packed counts.  Re-running inline (an
        isolated counter scope, no charges leak) and comparing proves
        the merged Section 3.1 totals are unaffected by retries.
        """
        for index in indices:
            replay = tasks.run_task((kind, payloads[index]))
            # Compare only (result, packed_counts) — a traced result
            # carries a trailing telemetry tuple whose wall-clock
            # fields are never bit-stable.  Packed results compare by
            # *content*: a replay packs into a fresh segment, so the
            # descriptors legitimately differ while the rows must not.
            # The original's segment is read without unlinking (the
            # engine still decodes it); the replay's is reclaimed here.
            original = tuple(results[index][:2])
            if shm.is_rows(original[0]) or shm.is_rows(replay[0]):
                original_rows = (
                    shm.read_rows(original[0], unlink=False)
                    if shm.is_rows(original[0])
                    else original[0]
                )
                replay_rows = (
                    shm.read_rows(replay[0], unlink=True)
                    if shm.is_rows(replay[0])
                    else replay[0]
                )
                identical = (
                    replay_rows == original_rows
                    and replay[1] == original[1]
                )
            else:
                identical = replay == original
            if not identical:
                raise AssertionError(
                    f"retried morsel {index} of {kind!r} diverged from "
                    f"its inline replay — the counter-merge determinism "
                    f"contract is broken"
                )
            self.stats["verified_retries"] += 1
            _metric("verified_retries_total", kind=kind)

    # ------------------------------------------------------------------ #
    # inline path
    # ------------------------------------------------------------------ #

    def _run_inline_one(
        self,
        kind: str,
        index: int,
        payload: tuple,
        budget: Optional[int] = None,
        mode: int = 0,
    ) -> Tuple[Any, tuple]:
        """One morsel inline, with the same bounded retry semantics.

        ``pool.worker`` faults apply here too (both actions surface as
        :class:`InjectedFaultError` — there is no process to kill), so
        chaos runs exercise retry even under ``pool="inline"``.  After
        the budget the morsel is poisoned.
        """
        remaining = self.retry_attempts if budget is None else max(1, budget)
        last: Optional[BaseException] = None
        for attempt in range(remaining):
            try:
                action = self._worker_fault(kind, index)
                if action is not None:
                    raise InjectedFaultError("pool.worker", action)
                return tasks.run_task(
                    trace_request(kind, payload, mode, index, time.monotonic())
                )
            except Exception as exc:
                last = exc
                if attempt + 1 < remaining:
                    self._note_retry(index)
                    _metric("morsel_retries_total", kind=kind)
                    self.retry_backoff.sleep(attempt)
        _metric("poisoned_morsels_total", kind=kind)
        raise PoisonedMorselError(kind, index, repr(last)) from last
