"""Two-phase parallel index build.

Phase 1 (parallel, uncharged): workers walk disjoint slices of the
relation's ``_all_refs`` order and physically extract every key — pure
prefetch, so it runs in muted counter scopes (the cost model charges
key extraction at the point of *logical* access, during the insert
loop).  Phase 2 (serial, organic): the coordinator bulk-loads the
index in the exact sequential insertion order through a *memoized*
key extractor that charges one traversal per call — precisely what
``Relation.key_extractor`` charges — while every physical dereference
is served from the prefetched memo and tallied under
``deref_saved_traversals``.

Hence ``create_index(..., parallel=True)`` produces a structurally
identical index with Section 3.1 counter totals *identical* to the
sequential build for any worker count (the memo changes only the
``extra`` savings tally), and the extractor swap at the end restores
the relation's normal uncached extractor for all future DML.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.instrument import count_event, count_traverse, counters_scope
from repro.query.parallel import runtime
from repro.query.parallel.transport import morsel_bounds
from repro.query.vectorized.deref import DEREF_SAVED_COUNTER

_MISS = object()


def _prefetch_keys(relation, field_spec, total: int) -> List[Any]:
    """Every ref's key, in ``_all_refs`` order, physically extracted.

    Uses the active scheduler's pool when it serves this relation's
    catalog; otherwise extracts in-process.  Either way the work is
    uncharged prefetch (see module docstring) — so worker count can
    never change the build's counter totals.
    """
    scheduler = runtime.active_scheduler()
    usable = (
        scheduler is not None
        and relation.name in scheduler.catalog
        and scheduler.catalog.relation(relation.name) is relation
    )
    if usable:
        bounds = morsel_bounds(total, scheduler.morsel_size)
        if len(bounds) > 1:
            payloads = [
                (scheduler.token, relation.name, field_spec, start, stop)
                for start, stop in bounds
            ]
            keys: List[Any] = []
            for chunk, *_rest in scheduler.run("extract_keys", payloads):
                keys.extend(chunk)
            return keys
    # In-process prefetch (no scheduler, foreign catalog, or one morsel):
    # same muted semantics as the worker task, without the shipping.
    with counters_scope():
        schema = relation.physical_schema
        if isinstance(field_spec, (list, tuple)):
            positions = [schema.position(name) for name in field_spec]

            def read_key(ref):
                part, slot = relation._locate(ref)
                return tuple(part.read_field(slot, p) for p in positions)

        else:
            position = schema.position(field_spec)

            def read_key(ref):
                part, slot = relation._locate(ref)
                return part.read_field(slot, position)

        return [read_key(ref) for ref in relation._all_refs()]


def bulk_load_parallel(
    relation,
    index,
    field_spec,
    final_extractor: Callable,
) -> None:
    """Populate ``index`` with every live tuple, keys prefetched.

    ``final_extractor`` is the relation's normal (counted, uncached)
    key extractor; it is installed as ``index.key_of`` once the bulk
    load finishes so later DML behaves exactly like a sequentially
    built index.
    """
    refs = list(relation._all_refs())
    keys = _prefetch_keys(relation, field_spec, len(refs))
    memo = dict(zip(refs, keys))
    pending = [0]
    miss = _MISS
    get = memo.get

    def cached(ref):
        count_traverse()
        value = get(ref, miss)
        if value is miss:
            # A ref outside the prefetch snapshot (cannot happen during
            # the bulk load itself): the traversal is already charged,
            # so only the physical read remains.
            return _physical_read(relation, field_spec, ref)
        pending[0] += 1
        return value

    index.key_of = cached
    try:
        for ref in refs:
            index.insert(ref)
    finally:
        index.key_of = final_extractor
        if pending[0]:
            count_event(DEREF_SAVED_COUNTER, pending[0])


def _physical_read(relation, field_spec, ref):
    schema = relation.physical_schema
    part, slot = relation._locate(ref)
    if isinstance(field_spec, (list, tuple)):
        return tuple(
            part.read_field(slot, schema.position(name))
            for name in field_spec
        )
    return part.read_field(slot, schema.position(field_spec))
