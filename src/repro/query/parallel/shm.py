"""Shared-memory morsel transport: packed pointer segments.

The paper's thesis is that in main memory the *processing* cost —
copying and moving tuples — dominates, which is why the engine passes
tuple pointers instead of materialized rows.  The morsel pool betrayed
that thesis at the process boundary: every dispatch and every result
pickled its ``(partition_id, slot)`` int pairs through the pool pipe,
one object header and one memo lookup per integer.  This module
extends "pass pointers, not data" across forks: pointer rows are packed
into flat int64 arrays inside named ``multiprocessing.shared_memory``
segments, and only a tiny descriptor tuple — segment name, row width,
count — crosses the pipe.

Three kinds of traffic ride on segments (see DESIGN.md section 3.13):

* **dispatch** — the coordinator packs one operator's entire encoded
  input once; each morsel payload carries an :func:`shm_slice`
  descriptor naming its ``[start, stop)`` window into that segment;
* **results** — a worker whose output crosses the row threshold packs
  it into a fresh per-morsel segment and ships back an
  :func:`shm_rows` descriptor, transferring ownership (and the duty to
  unlink) to the coordinator;
* **broadcast** — the hash-probe build table is pickled once into a
  single segment that every worker attaches by name, instead of the
  blob riding inside every probe payload.

**Packed layout.**  A segment is a 16-byte header — two little-endian
int64s, ``row_width`` then ``count`` — followed by
``count * row_width * 2`` native int64s: each row is ``row_width``
``(partition_id, slot)`` pairs laid out flat.  ``row_width == 1`` with
shape ``"refs"`` stores a bare pointer list (the scan-filter result
shape).  Packing and unpacking are pure transport: they charge no
Section 3.1 counters, and int64 round-trips every encoded value
bit-exactly, so rows decode identical to the pickle wire.

**Lifecycle.**  Every segment is created through the process-local
:class:`ShmArena`, which records ``(name, creating pid)`` and unlinks
whatever this process still owns at interpreter exit.  Forked children
inherit the parent's registry copy-on-write; every mutating arena
method first discards entries that belong to another pid, so a worker
can never unlink the coordinator's live segments (re-fork safety), and
worker-created result segments are explicitly *transferred*: created
invisible to the resource tracker and forgotten on send, so exactly
one process — the coordinator that reads them — unlinks each.  Reader
attaches are likewise tracker-silent (see :func:`_quiet_tracker`):
every segment produces at most one register/unregister pair, from the
process that owns its lifecycle.

Platforms without ``multiprocessing.shared_memory`` (or without a
usable ``/dev/shm``) report :func:`available` false and the engine
falls back — loudly and deterministically — to the pickle transport.
"""

from __future__ import annotations

import atexit
import itertools
import os
import struct
from array import array
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - import success is the normal case
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platform-dependent
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

from repro.obs import runtime as obs_runtime

#: Descriptor tags.  A descriptor is a plain tuple whose first element
#: is one of these markers — cheap to pickle, trivially distinguishable
#: from the list payloads the pickle transport ships.
SLICE_TAG = "shm:slice"  # (tag, segment, row_width, start, stop)
ROWS_TAG = "shm:rows"  # (tag, segment, shape, row_width, count)
BLOB_TAG = "shm:blob"  # (tag, segment, nbytes)
REQUEST_TAG = "shm:req"  # (tag, result_threshold, inner_payload)

#: Result shapes a rows descriptor can carry: ``"refs"`` is a flat list
#: of ``(partition_id, slot)`` pairs, ``"rows"`` a list of tuples of
#: such pairs.
SHAPES = ("refs", "rows")

#: Minimum broadcast-blob size worth a segment: below one page the
#: fixed shm_open/mmap round-trip costs more than pickling the blob
#: into each payload would.
MIN_BLOB_BYTES = 4096

#: Header: row_width then count, two little-endian signed 64-bit ints.
_HEADER = struct.Struct("<qq")
_ITEM = 8  # bytes per int64
_PAIR = 2 * _ITEM  # bytes per (partition_id, slot) pair


def available() -> bool:
    """Can this platform back the shm transport?"""
    return shared_memory is not None


# --------------------------------------------------------------------- #
# packing / unpacking
# --------------------------------------------------------------------- #


def _flatten_rows(rows: Sequence[Tuple[Tuple[int, int], ...]]) -> array:
    flat = array("q")
    extend = flat.extend
    for row in rows:
        for pair in row:
            extend(pair)
    return flat


def _flatten_refs(pairs: Sequence[Tuple[int, int]]) -> array:
    flat = array("q")
    extend = flat.extend
    for pair in pairs:
        extend(pair)
    return flat


def packed_nbytes(row_width: int, count: int) -> int:
    """Total segment size for ``count`` rows of ``row_width`` pairs."""
    return _HEADER.size + count * row_width * _PAIR


def pack_into(
    buf, rows: Sequence[Any], row_width: int, shape: str = "rows"
) -> int:
    """Pack ``rows`` (rows or refs per ``shape``) into ``buf``.

    Writes the ``(row_width, count)`` header followed by the flat int64
    payload; returns the number of bytes written.
    """
    if shape not in SHAPES:
        raise ValueError(f"unknown packed shape {shape!r}")
    flat = (
        _flatten_refs(rows) if shape == "refs" else _flatten_rows(rows)
    )
    data = flat.tobytes()
    end = _HEADER.size + len(data)
    _HEADER.pack_into(buf, 0, row_width, len(rows))
    buf[_HEADER.size:end] = data
    return end


def unpack_header(buf) -> Tuple[int, int]:
    """``(row_width, count)`` from a packed segment's header."""
    return _HEADER.unpack_from(buf, 0)


def unpack_refs(buf, count: int) -> List[Tuple[int, int]]:
    """Decode a ``"refs"`` payload: ``count`` ``(pid, slot)`` pairs."""
    flat = array("q")
    flat.frombytes(bytes(buf[_HEADER.size:_HEADER.size + count * _PAIR]))
    it = iter(flat)
    return [(part, slot) for part, slot in zip(it, it)]


def unpack_rows(
    buf, row_width: int, start: int, stop: int
) -> List[Tuple[Tuple[int, int], ...]]:
    """Decode rows ``[start, stop)`` of a ``"rows"`` payload.

    Returns exactly the structure :func:`~repro.query.parallel.
    transport.encode_rows` produces — tuples of ``(pid, slot)`` tuples —
    so downstream task kernels cannot tell the transports apart.
    """
    lo = _HEADER.size + start * row_width * _PAIR
    hi = _HEADER.size + stop * row_width * _PAIR
    flat = array("q")
    flat.frombytes(bytes(buf[lo:hi]))
    it = iter(flat)
    pairs = [(part, slot) for part, slot in zip(it, it)]
    return [
        tuple(pairs[i:i + row_width])
        for i in range(0, len(pairs), row_width)
    ]


# --------------------------------------------------------------------- #
# the arena: creation, tracking, unlink discipline
# --------------------------------------------------------------------- #

_seq = itertools.count(1)


def _segment_name() -> str:
    """A process-unique segment name (pid + monotonic counter)."""
    return f"repro-{os.getpid()}-{next(_seq)}"


@contextmanager
def _quiet_tracker():
    """Suppress resource-tracker messages for the enclosed block.

    CPython registers a segment with the resource tracker on *every*
    attach, not just on create, and forked processes share one tracker
    whose pipe interleaves messages from everyone.  If readers and
    transferred segments send their own register/unregister pairs,
    those race the creator's messages and the tracker logs KeyError
    tracebacks for perfectly balanced lifecycles.  The protocol here
    instead allows each segment at most one register (its tracked
    creator) and one unregister (the tracked unlink) — attaches and
    untracked creations/unlinks say nothing at all.
    """
    if resource_tracker is None:  # pragma: no cover - platform-dependent
        yield
        return
    register = resource_tracker.register
    unregister = resource_tracker.unregister
    resource_tracker.register = lambda *args, **kwargs: None
    resource_tracker.unregister = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = register
        resource_tracker.unregister = unregister


class ShmArena:
    """Tracks the segments this process created and still owns.

    One arena per process (see :func:`arena`); forked children inherit
    the parent's instance copy-on-write and disown its entries on first
    touch — a child must never unlink the parent's live segments.
    """

    def __init__(self) -> None:
        self._pid = os.getpid()
        #: name -> tracked?, for every created-but-not-yet-unlinked
        #: segment this process is responsible for.  ``tracked`` means
        #: the resource tracker holds a registration that the eventual
        #: unlink must balance with an unregister.
        self._owned: Dict[str, bool] = {}
        #: Cumulative creation tally (observability, not lifecycle).
        self.created_segments = 0
        self.created_bytes = 0

    def _disown_foreign(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            # Forked child: the inherited registry names the parent's
            # segments.  Abandon them (the parent unlinks its own) and
            # adopt this pid.
            self._pid = pid
            self._owned = {}

    def _publish_gauge(self) -> None:
        obs = obs_runtime.active()
        if obs is not None and obs.metrics is not None:
            obs.metrics.gauge(
                "shm_segments_active",
                "Shared-memory segments this process has not unlinked",
            ).set(len(self._owned))

    def create(self, nbytes: int, tracked: bool = True):
        """A fresh named segment of at least ``nbytes`` bytes.

        ``tracked=False`` (segments about to be transferred to another
        process) creates the segment without a resource-tracker
        registration: the receiving coordinator unlinks it, and a
        registration here could only produce unbalanced tracker
        messages.  The cost is crash coverage — a worker hard-killed
        between creating and shipping such a segment leaks it until
        host cleanup (the same already-documented window as a
        timeout-abandoned result).
        """
        if shared_memory is None:  # pragma: no cover - gated by available()
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        self._disown_foreign()
        name = _segment_name()
        size = max(1, nbytes)
        if tracked:
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=size)
        else:
            with _quiet_tracker():
                shm = shared_memory.SharedMemory(name=name, create=True,
                                                 size=size)
        self._owned[shm.name] = tracked
        self.created_segments += 1
        self.created_bytes += nbytes
        self._publish_gauge()
        return shm

    def transfer(self, shm) -> str:
        """Hand ``shm`` to another process: close and forget.

        Returns the segment name the new owner attaches (and later
        unlinks) by.  Used by workers shipping result segments to the
        coordinator; such segments are created untracked, so no
        resource-tracker bookkeeping needs undoing here.
        """
        self._disown_foreign()
        name = shm.name
        self._owned.pop(name, None)
        shm.close()
        self._publish_gauge()
        return name

    def unlink(self, name: str) -> None:
        """Unlink ``name`` (tolerating an already-gone segment)."""
        self._disown_foreign()
        tracked = self._owned.pop(name, False)
        self._publish_gauge()
        if shared_memory is None:  # pragma: no cover
            return
        try:
            with _quiet_tracker():
                seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        seg.close()
        try:
            if tracked:
                seg.unlink()
            else:
                # Not registered here (a reader reclaiming a transferred
                # segment, or an untracked creation): an unregister
                # would be unbalanced tracker chatter.
                with _quiet_tracker():
                    seg.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass

    def active_segments(self) -> int:
        """How many created segments this process has not yet unlinked."""
        self._disown_foreign()
        return len(self._owned)

    def active_names(self) -> List[str]:
        self._disown_foreign()
        return sorted(self._owned)

    def drain(self) -> int:
        """Unlink everything still owned; returns how many (atexit)."""
        self._disown_foreign()
        names = list(self._owned)
        for name in names:
            self.unlink(name)
        return len(names)


_ARENA = ShmArena()


def arena() -> ShmArena:
    """The process-local arena."""
    return _ARENA


@atexit.register
def _drain_at_exit() -> None:  # pragma: no cover - interpreter shutdown
    try:
        _ARENA.drain()
    except Exception:
        pass


# --------------------------------------------------------------------- #
# writer helpers (descriptor constructors)
# --------------------------------------------------------------------- #


def write_rows(
    rows: Sequence[Any],
    row_width: int,
    shape: str = "rows",
    transfer: bool = False,
) -> Tuple[Any, ...]:
    """Pack ``rows`` into a fresh segment; returns a rows descriptor.

    ``transfer=True`` (worker results) closes the local mapping and
    untracks the segment so the receiving coordinator owns the unlink.
    """
    shm = _ARENA.create(
        packed_nbytes(row_width, len(rows)), tracked=not transfer
    )
    try:
        pack_into(shm.buf, rows, row_width, shape)
    except BaseException:
        name = shm.name
        shm.close()
        _ARENA.unlink(name)
        raise
    if transfer:
        name = _ARENA.transfer(shm)
    else:
        name = shm.name
        shm.close()
    return (ROWS_TAG, name, shape, row_width, len(rows))


def write_blob(blob: bytes) -> Tuple[Any, ...]:
    """Write an opaque byte blob into a segment (broadcast path)."""
    shm = _ARENA.create(len(blob))
    try:
        shm.buf[:len(blob)] = blob
    except BaseException:
        name = shm.name
        shm.close()
        _ARENA.unlink(name)
        raise
    name = shm.name
    shm.close()
    return (BLOB_TAG, name, len(blob))


def shm_slice(
    segment: str, row_width: int, start: int, stop: int
) -> Tuple[Any, ...]:
    """A dispatch descriptor: rows ``[start, stop)`` of ``segment``."""
    return (SLICE_TAG, segment, row_width, start, stop)


def is_slice(value: Any) -> bool:
    return (
        type(value) is tuple and len(value) == 5 and value[0] == SLICE_TAG
    )


def is_rows(value: Any) -> bool:
    return (
        type(value) is tuple and len(value) == 5 and value[0] == ROWS_TAG
    )


def is_blob(value: Any) -> bool:
    return (
        type(value) is tuple and len(value) == 3 and value[0] == BLOB_TAG
    )


def descriptor_nbytes(value: Any) -> int:
    """The packed payload bytes a descriptor stands for."""
    if is_slice(value):
        __, __, row_width, start, stop = value
        return (stop - start) * row_width * _PAIR
    if is_rows(value):
        __, __, __, row_width, count = value
        return max(1, row_width) * count * _PAIR
    if is_blob(value):
        return value[2]
    return 0


# --------------------------------------------------------------------- #
# reader helpers
# --------------------------------------------------------------------- #


def attach(name: str):
    """Attach an existing segment by name (read side).

    Readers never own the unlink, so the attach is kept invisible to
    the resource tracker (see :func:`_quiet_tracker`): the creator's
    arena — or the coordinator a result was transferred to — handles
    lifecycle.
    """
    if shared_memory is None:  # pragma: no cover - gated by available()
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    with _quiet_tracker():
        return shared_memory.SharedMemory(name=name)


def read_slice(descriptor: Tuple[Any, ...], segment) -> List[Any]:
    """Decode the rows a slice descriptor names from ``segment``.

    Dispatch slices always carry the ``"rows"`` shape — every
    parallelised operator input is a pointer-row list (the scan path
    ships no rows at all, only ``[start, stop)`` bounds).
    """
    __, __, row_width, start, stop = descriptor
    return unpack_rows(segment.buf, row_width, start, stop)


def read_rows(descriptor: Tuple[Any, ...], unlink: bool = True) -> List[Any]:
    """Decode (and by default reclaim) a whole rows segment."""
    __, name, shape, row_width, count = descriptor
    seg = attach(name)
    try:
        if shape == "refs":
            out: List[Any] = unpack_refs(seg.buf, count)
        else:
            out = unpack_rows(seg.buf, row_width, 0, count)
    finally:
        seg.close()
    if unlink:
        _ARENA.unlink(name)
    return out


def read_blob(descriptor: Tuple[Any, ...]) -> bytes:
    """The broadcast blob bytes a blob descriptor names."""
    __, name, nbytes = descriptor
    seg = attach(name)
    try:
        return bytes(seg.buf[:nbytes])
    finally:
        seg.close()


# --------------------------------------------------------------------- #
# the worker-side attach cache
# --------------------------------------------------------------------- #


class SegmentCache:
    """A bounded LRU of attached segments, worker-process-local.

    Dispatch slices of one operator all name the same segment; caching
    the attachment keeps it one ``shm_open``+``mmap`` per worker per
    operator instead of per morsel.  Evicted attachments are closed;
    segment names are never reused (pid + monotonic counter), so a
    stale entry can never alias a new segment.  Forked children drop
    inherited entries without closing them — the mappings belong to the
    parent's accounting, and abandoning them is always safe.
    """

    def __init__(self, limit: int = 8) -> None:
        self.limit = int(limit)
        self._pid = os.getpid()
        self._segments: "OrderedDict[str, Any]" = OrderedDict()
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    def _own(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._segments = OrderedDict()

    def get(self, name: str):
        """Attach-or-reuse ``name``; LRU order refreshed on hit."""
        self._own()
        seg = self._segments.get(name)
        if seg is not None:
            self.hits += 1
            self._segments.move_to_end(name)
            return seg
        self.misses += 1
        seg = attach(name)
        self._segments[name] = seg
        while len(self._segments) > self.limit:
            __, evicted = self._segments.popitem(last=False)
            self.evictions += 1
            try:
                evicted.close()
            except BufferError:  # pragma: no cover - exported views
                pass
        return seg

    def clear(self) -> None:
        self._own()
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover
                pass
        self._segments = OrderedDict()

    def stats(self) -> Dict[str, int]:
        self._own()
        return {
            "attached": len(self._segments),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
