"""Selection access paths (paper Sections 3.2 and 4).

"There are three possible access paths for selection (hash lookup, tree
lookup, or sequential scan through an unrelated index)" with a definite
preference order: "a hash lookup (exact match only) is always faster than
a tree lookup which is always faster than a sequential scan."
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.errors import UnsupportedOperationError
from repro.indexes.base import Index, OrderedIndex
from repro.query.predicates import Predicate


def select_hash(index: Index, key: Any) -> List[Any]:
    """Exact-match lookup through a hash index (fastest path)."""
    return index.search_all(key)


def select_tree_exact(index: OrderedIndex, key: Any) -> List[Any]:
    """Exact-match lookup through an ordered (tree/array) index."""
    if not index.ordered:
        raise UnsupportedOperationError(
            f"{index.kind} is not an ordered index"
        )
    return index.search_all(key)


def select_tree_range(
    index: OrderedIndex,
    low: Any = None,
    high: Any = None,
    include_low: bool = True,
    include_high: bool = True,
) -> List[Any]:
    """Range lookup through an ordered index.

    Only the order-preserving structures support this — it is the
    operation that keeps T-Trees in the design next to hashing.
    """
    if not index.ordered:
        raise UnsupportedOperationError(
            f"{index.kind} cannot serve range queries"
        )
    return list(index.range_scan(low, high, include_low, include_high))


def select_scan(
    items: Iterable[Any],
    matches: Callable[[Any], bool],
) -> List[Any]:
    """Sequential scan with a residual predicate (slowest path).

    ``items`` is a scan of any index of the relation ("sequential scan
    through an unrelated index" — relations have no direct traversal).
    """
    return [item for item in items if matches(item)]


def select_from_relation(relation, predicate: Predicate) -> List[Any]:
    """Predicate-driven scan over a relation's tuples.

    A convenience used by tests and the executor's fallback path; access
    goes through :meth:`Relation.any_index`, never directly.
    """

    def matcher(ref: Any) -> bool:
        return predicate.matches(
            lambda field_name: relation.read_field(ref, field_name)
        )

    return select_scan(relation.any_index().scan(), matcher)
