"""Execution-engine selection.

``MainMemoryDatabase.configure_execution`` accepts either an
:class:`ExecutionConfig` or its keyword fields; the default
configuration keeps the tuple-at-a-time reference engine, so existing
behaviour is unchanged unless a caller opts in.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rows per batch exchanged between pipelined operators.  Large enough
#: to amortize per-batch bookkeeping, small enough that a pipeline's
#: working set stays cache-resident.
DEFAULT_BATCH_SIZE = 256

#: Recognised engine names.
ENGINES = ("tuple", "batch")


@dataclass(frozen=True)
class ExecutionConfig:
    """Which executor evaluates plan trees, and its batch size.

    ``engine`` — ``"tuple"`` (the reference tuple-at-a-time path) or
    ``"batch"`` (the pipelined vectorized path).  ``batch_size`` only
    matters for the batch engine.
    """

    engine: str = "tuple"
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown execution engine {self.engine!r}; "
                f"choose one of {ENGINES}"
            )
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ValueError(
                f"batch_size must be a positive integer, "
                f"got {self.batch_size!r}"
            )
