"""Execution-engine selection.

``MainMemoryDatabase.configure_execution`` accepts either an
:class:`ExecutionConfig` or its keyword fields; the default
configuration keeps the tuple-at-a-time reference engine, so existing
behaviour is unchanged unless a caller opts in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

#: Rows per batch exchanged between pipelined operators.  Large enough
#: to amortize per-batch bookkeeping, small enough that a pipeline's
#: working set stays cache-resident.
DEFAULT_BATCH_SIZE = 256

#: Rows per parallel morsel.  Morsel decomposition depends only on the
#: input size and this setting — never on the worker count — which is
#: what makes the merged Section 3.1 counter totals identical for any
#: number of workers (DESIGN.md section 3.9).  At roughly 2 microseconds
#: of predicate/probe work per row, 4096 rows is ~8 ms of work per
#: dispatch, two orders of magnitude above the pool round-trip cost.
DEFAULT_MORSEL_SIZE = 4096

#: Recognised engine names.
ENGINES = ("tuple", "batch")

#: Recognised worker-pool modes.  ``auto`` uses a fork-based process
#: pool when the platform supports it and falls back to the in-process
#: executor otherwise; ``process`` / ``inline`` force one or the other
#: (``inline`` is the deterministic fallback for tests and
#: Windows-free CI).
POOL_MODES = ("auto", "process", "inline")

#: Recognised morsel-transport names.  ``pickle`` is the classic pool
#: pipe (payloads pickled whole); ``shm`` packs pointer rows into named
#: shared-memory segments and ships only tiny descriptors through the
#: pipe (DESIGN.md section 3.13).  The default comes from the
#: ``REPRO_TRANSPORT`` environment variable, falling back to
#: ``pickle``, whose wire format is byte-identical to before the shm
#: transport existed.
TRANSPORTS = ("pickle", "shm")

#: Minimum encoded rows in one payload before the shm transport bothers
#: with a segment; smaller payloads ride the pickle pipe where the
#: fixed shm_open/mmap cost would dominate.
DEFAULT_SHM_THRESHOLD = 1024

#: Run attempts per morsel before it is quarantined to the inline
#: executor: the first run plus one retry.  Enough to absorb any single
#: transient worker failure without hiding a persistently failing
#: morsel behind a long retry storm.
DEFAULT_RETRY_ATTEMPTS = 2


@dataclass(frozen=True)
class ExecutionConfig:
    """Which executor evaluates plan trees, and how.

    ``engine`` — ``"tuple"`` (the reference tuple-at-a-time path) or
    ``"batch"`` (the pipelined vectorized path).  ``batch_size`` only
    matters for the batch engine.  ``workers`` > 1 adds morsel-driven
    parallelism on top of the batch engine; ``workers=1`` (the default)
    is exactly the scalar batch engine — no pool is ever created.
    ``morsel_size`` sets the parallel work-unit size and the minimum
    input size worth parallelising; ``pool`` picks the worker-pool
    mode (see :data:`POOL_MODES`).

    ``retry_attempts`` bounds how many times one morsel may run before
    the scheduler quarantines it (first run included); a quarantined
    morsel re-executes inline once, and only if that also fails does the
    query die with :class:`~repro.errors.PoisonedMorselError`.
    ``retry_timeout`` (seconds) bounds the wait for one morsel result
    from the pool — 0 waits forever.  ``retry_backoff`` (a
    :class:`~repro.fault.BackoffPolicy`) paces re-dispatch between
    retry rounds; ``None`` — the default — retries immediately.

    ``transport`` picks how morsel payloads cross the process boundary
    (see :data:`TRANSPORTS`); ``None`` resolves to ``REPRO_TRANSPORT``
    or ``"pickle"`` at construction, so the resolved config always
    carries a concrete name.  ``shm_threshold_rows`` is the minimum
    encoded-row count before the shm transport packs a payload into a
    segment; below it, payloads ride the pickle pipe even in shm mode.
    """

    engine: str = "tuple"
    batch_size: int = DEFAULT_BATCH_SIZE
    workers: int = 1
    morsel_size: int = DEFAULT_MORSEL_SIZE
    pool: str = "auto"
    retry_attempts: int = DEFAULT_RETRY_ATTEMPTS
    retry_timeout: float = 0.0
    transport: Optional[str] = None
    shm_threshold_rows: int = DEFAULT_SHM_THRESHOLD
    retry_backoff: Optional[object] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown execution engine {self.engine!r}; "
                f"choose one of {ENGINES}"
            )
        if not isinstance(self.batch_size, int) or isinstance(
            self.batch_size, bool
        ) or self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be a positive integer, "
                f"got {self.batch_size!r}"
            )
        if not isinstance(self.workers, int) or isinstance(
            self.workers, bool
        ) or self.workers < 1:
            raise ConfigError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if self.engine != "batch" and self.workers > 1:
            raise ConfigError(
                f"workers={self.workers} requires engine='batch' "
                f"(the tuple engine has no parallel path)"
            )
        if not isinstance(self.morsel_size, int) or isinstance(
            self.morsel_size, bool
        ) or self.morsel_size < 1:
            raise ConfigError(
                f"morsel_size must be a positive integer, "
                f"got {self.morsel_size!r}"
            )
        if self.pool not in POOL_MODES:
            raise ConfigError(
                f"unknown pool mode {self.pool!r}; "
                f"choose one of {POOL_MODES}"
            )
        if not isinstance(self.retry_attempts, int) or isinstance(
            self.retry_attempts, bool
        ) or self.retry_attempts < 1:
            raise ConfigError(
                f"retry_attempts must be a positive integer, "
                f"got {self.retry_attempts!r}"
            )
        if (
            not isinstance(self.retry_timeout, (int, float))
            or isinstance(self.retry_timeout, bool)
            or self.retry_timeout < 0
        ):
            raise ConfigError(
                f"retry_timeout must be a non-negative number, "
                f"got {self.retry_timeout!r}"
            )
        if self.transport is None:
            resolved = os.environ.get("REPRO_TRANSPORT", "pickle")
            object.__setattr__(self, "transport", resolved)
        if self.transport not in TRANSPORTS:
            raise ConfigError(
                f"unknown transport {self.transport!r}; "
                f"choose one of {TRANSPORTS}"
            )
        if not isinstance(self.shm_threshold_rows, int) or isinstance(
            self.shm_threshold_rows, bool
        ) or self.shm_threshold_rows < 1:
            raise ConfigError(
                f"shm_threshold_rows must be a positive integer, "
                f"got {self.shm_threshold_rows!r}"
            )
        if self.retry_backoff is not None:
            from repro.fault.backoff import BackoffPolicy

            if not isinstance(self.retry_backoff, BackoffPolicy):
                raise ConfigError(
                    f"retry_backoff must be a BackoffPolicy or None, "
                    f"got {self.retry_backoff!r}"
                )
