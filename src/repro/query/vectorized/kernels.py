"""Batch kernels: partitioned hash-join build/probe, key-cached sorts.

The hash-join kernel follows the hybrid-hash shape: the build side is
split across a small power-of-two number of partitions (each its own
dict keyed by join value), probes hash straight to their partition, and
equal-key matches are emitted newest-first — the same order the tuple
engine's Chained Bucket Hash produces (its chains are LIFO), so results
are bit-identical.

Counting: the kernel charges what it actually does — one hash per
build/probe row, one move per build insert and per emitted pair, one
allocation per partition header — and key extraction is charged by the
(dereference-cached) extractors it is given.  That is strictly *less*
than the tuple engine's chained-hash totals, which additionally pay
chain traversals, chain comparisons and per-chain-node key
re-extractions; differential tests assert the elementwise bound.  Hash
equi-joins are therefore the one path *outside* the counter-equivalence
contract (DESIGN.md §3.8) — by design, since eliminating re-extractions
is the point.

The sort kernels reuse the paper's instrumented quicksort unchanged;
supplying dereference-cached key extractors makes the key cache the
optimisation (physical derefs drop from O(n log n) to O(n)) while
comparison/move/traversal totals stay identical.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.instrument import (
    count_alloc,
    count_hash,
    count_move,
    count_traverse,
)
from repro.query.sort import quicksort

KeyOf = Callable[[Any], Any]

#: Build-side partitions (power of two; the paper-scale inners this
#: engine sees make a deeper partitioning pointless).
DEFAULT_PARTITIONS = 8


class PartitionedHashTable:
    """A build-side hash table split across ``n_partitions`` dicts."""

    __slots__ = ("partitions", "mask", "size")

    def __init__(self, n_partitions: int = DEFAULT_PARTITIONS) -> None:
        if n_partitions < 1 or n_partitions & (n_partitions - 1):
            raise ValueError("n_partitions must be a power of two")
        self.partitions: List[dict] = [dict() for _ in range(n_partitions)]
        self.mask = n_partitions - 1
        self.size = 0
        count_alloc(n_partitions)


def _fit_partitions(n_rows: int, ceiling: int) -> int:
    """Largest power of two <= min(n_rows, ceiling), at least 1.

    Scaling the partition count to the build size (the hybrid-hash
    move) also keeps the kernel's allocation count bounded by the tuple
    engine's chained-hash build (one node allocation per insert plus
    the table), preserving the elementwise op-count bound even for tiny
    inners.
    """
    fitted = 1
    while fitted * 2 <= min(n_rows, ceiling):
        fitted *= 2
    return fitted


def build_hash_table(
    rows: Sequence[Any],
    key_of: KeyOf,
    n_partitions: int = None,
) -> PartitionedHashTable:
    """Build phase: partition the inner input by join key."""
    if n_partitions is None:
        n_partitions = _fit_partitions(len(rows), DEFAULT_PARTITIONS)
    table = PartitionedHashTable(n_partitions)
    partitions = table.partitions
    mask = table.mask
    for row in rows:
        key = key_of(row)
        bucket = partitions[hash(key) & mask]
        matches = bucket.get(key)
        if matches is None:
            bucket[key] = [row]
        else:
            matches.append(row)
    count_hash(len(rows))
    count_move(len(rows))
    table.size = len(rows)
    return table


def probe_hash_table(
    table: PartitionedHashTable,
    rows: Sequence[Tuple[Any, ...]],
    key_of: KeyOf,
) -> List[Tuple[Any, ...]]:
    """Probe phase: one batch of outer rows -> combined output rows.

    Emits ``outer_row + inner_row`` concatenations.  Equal-key matches
    come out newest-inserted-first (``reversed``), matching the LIFO
    chains of the tuple engine's Chained Bucket Hash so both engines
    produce identical row order.
    """
    partitions = table.partitions
    mask = table.mask
    out: List[Tuple[Any, ...]] = []
    append = out.append
    for row in rows:
        key = key_of(row)
        matches = partitions[hash(key) & mask].get(key)
        if matches is not None:
            for inner_row in reversed(matches):
                append(row + inner_row)
    count_hash(len(rows))
    count_move(len(out))
    return out


def dedup_hash_rows(
    rows: Sequence[Any],
    key_of: KeyOf,
    keys_per_row: int = 1,
) -> List[Any]:
    """Hash duplicate elimination, dict-based (first occurrence wins).

    The batch counterpart of :func:`repro.query.project.project_hash`:
    same result rows in the same order, but the chained-bucket walk —
    and its per-chain-node key re-extractions — collapse into one dict
    membership test per row.  Charges one hash per row, one traversal
    per key column per row (what ``key_of`` would charge row-wise) and
    one move per surviving row; the tuple engine's totals additionally
    pay the chain traversals/comparisons, so this is elementwise
    cheaper — outside the strict equivalence contract, like the hash
    join kernel.  ``key_of`` must be an *uncounted* extractor; this
    function charges the traversals in bulk.
    """
    seen = set()
    add = seen.add
    out: List[Any] = []
    append = out.append
    for row in rows:
        key = key_of(row)
        if key not in seen:
            add(key)
            append(row)
    count_alloc(1)
    count_hash(len(rows))
    count_traverse(len(rows) * keys_per_row)
    count_move(len(out))
    return out


def sort_rows_cached(
    rows: List[Any], key_of: KeyOf
) -> List[Any]:
    """In-place paper quicksort with a (typically cached) key extractor.

    Thin named wrapper so call sites read as "the key-cached sort
    kernel"; the instrumentation and the permutation are exactly the
    paper's footnote-6 quicksort.
    """
    quicksort(rows, key_of=key_of)
    return rows
