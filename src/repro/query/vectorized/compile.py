"""Predicate compilation: AST -> one batch-mask closure per operator.

The tuple engine dispatches through the predicate AST once *per tuple*
(``Predicate.matches`` -> enum checks -> reader closure -> extractor).
Here the AST is walked once per operator and lowered into a chain of
eval-free closures over :mod:`operator` functions; evaluating a batch
is then a single list comprehension per comparison plus bulk counter
updates.

Counting is tuple-engine-equivalent by construction:

* a :class:`Comparison` pass charges one comparison per evaluated item
  (two for BETWEEN, which always tests both bounds) and — in filter
  context — one traversal per evaluated item, exactly what
  ``Comparison.matches`` over counted extractors charges;
* :class:`Conjunction` / :class:`Disjunction` compile to short-circuit
  cascades: each later part is evaluated only over the items still
  live (AND) or still dead (OR), matching ``all()`` / ``any()``
  short-circuiting item by item;
* any other :class:`Predicate` subclass (e.g. the engine's rewritten
  foreign-key comparisons) falls back to row-wise ``matches`` against a
  reader with tuple-engine counting, so nothing is miscounted even for
  predicates this module knows nothing about.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List, Sequence

from repro.instrument import count_compare, count_traverse
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Op,
    Predicate,
)

#: ``items -> [bool per item]``
MaskFn = Callable[[Sequence[Any]], List[bool]]

_OP_FUNCS = {
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
}


def compile_predicate(predicate: Predicate, access) -> MaskFn:
    """Lower ``predicate`` to a batch-mask closure.

    ``access`` supplies field extractors and per-item readers (a
    :class:`~repro.query.vectorized.deref.ScanFieldAccess` or
    :class:`~repro.query.vectorized.deref.RowFieldAccess`); its
    ``counts_traversals`` flag says whether each evaluated comparison
    charges a pointer traversal (filter context) or not (scan context,
    where the tuple engine reads through ``Relation.read_field``).

    The returned mask publishes the access's accumulated dereference
    savings (``access.flush()``) once per batch, so the hot per-hit
    path inside the extractors stays a bare counter increment.
    """
    multi = _multi_use_fields(predicate)
    inner = _compile(predicate, access, multi)
    flush = access.flush

    def mask(items: Sequence[Any]) -> List[bool]:
        out = inner(items)
        flush()
        return out

    return mask


def _multi_use_fields(predicate: Predicate):
    """Fields the predicate may read more than once per item, or
    ``None`` when that cannot be determined (unknown subclass present).

    Single-use fields get raw (unmemoized) extractors: their memo could
    never hit, so the dict and pointer-hash overhead is pure loss.
    ``None`` memoizes everything, the conservative choice.
    """
    counts: dict = {}
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Comparison):
            counts[node.field] = counts.get(node.field, 0) + 1
        elif isinstance(node, (Conjunction, Disjunction)):
            stack.extend(node.parts)
        else:
            return None
    return {field for field, n in counts.items() if n > 1}


def _compile(predicate: Predicate, access, multi) -> MaskFn:
    if isinstance(predicate, Comparison):
        return _compile_comparison(predicate, access, multi)
    if isinstance(predicate, Conjunction):
        return _compile_cascade(
            predicate.parts, access, multi, conjunctive=True
        )
    if isinstance(predicate, Disjunction):
        return _compile_cascade(
            predicate.parts, access, multi, conjunctive=False
        )
    return _compile_fallback(predicate, access)


def _compile_comparison(cmp: Comparison, access, multi) -> MaskFn:
    memoize = multi is None or cmp.field in multi
    extract = access.extractor(cmp.field, memoize=memoize)
    counts_traversals = access.counts_traversals

    if cmp.op is Op.BETWEEN:
        low, high = cmp.value, cmp.high

        def mask(items: Sequence[Any]) -> List[bool]:
            out = [low <= extract(item) <= high for item in items]
            count_compare(2 * len(items))
            if counts_traversals:
                count_traverse(len(items))
            return out

        return mask

    op_fn = _OP_FUNCS[cmp.op]
    value = cmp.value

    def mask(items: Sequence[Any]) -> List[bool]:
        out = [op_fn(extract(item), value) for item in items]
        count_compare(len(items))
        if counts_traversals:
            count_traverse(len(items))
        return out

    return mask


def _compile_cascade(
    parts: Sequence[Predicate], access, multi, conjunctive: bool
) -> MaskFn:
    """AND/OR as a cascade over the still-undecided subset.

    AND: later parts see only items every earlier part accepted.
    OR: later parts see only items no earlier part accepted.  This is
    exactly the per-item short-circuit of ``all()`` / ``any()``, so op
    totals match the tuple engine's.
    """
    if not parts:
        fixed = conjunctive  # all(()) is True, any(()) is False

        def trivial(items: Sequence[Any]) -> List[bool]:
            return [fixed] * len(items)

        return trivial

    compiled = [_compile(part, access, multi) for part in parts]
    first = compiled[0]
    rest = compiled[1:]

    if conjunctive:

        def mask(items: Sequence[Any]) -> List[bool]:
            out = first(items)
            for part in rest:
                live = [i for i, keep in enumerate(out) if keep]
                if not live:
                    break
                flags = part([items[i] for i in live])
                for i, keep in zip(live, flags):
                    if not keep:
                        out[i] = False
            return out

    else:

        def mask(items: Sequence[Any]) -> List[bool]:
            out = first(items)
            for part in rest:
                dead = [i for i, keep in enumerate(out) if not keep]
                if not dead:
                    break
                flags = part([items[i] for i in dead])
                for i, keep in zip(dead, flags):
                    if keep:
                        out[i] = True
            return out

    return mask


def _compile_fallback(predicate: Predicate, access) -> MaskFn:
    """Row-wise evaluation for predicate types with no batch lowering."""
    matches = predicate.matches
    reader = access.reader

    def mask(items: Sequence[Any]) -> List[bool]:
        return [matches(reader(item)) for item in items]

    return mask
