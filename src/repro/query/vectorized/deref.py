"""Per-operator dereference caching.

The paper's cost model charges one pointer traversal per (tuple, field)
extraction.  The tuple-at-a-time engine *performs* one physical
dereference per charge; operators that touch the same field of the same
tuple repeatedly (quicksort keys, hash-chain re-extractions, duplicate
elimination) pay the physical work again each time.  The extractors
here memoize the extracted value per tuple pointer so the physical
dereference happens at most once per operator, while the *logical*
traversal is still counted exactly as the tuple engine counts it — the
paper's graphs stay reproducible — and every avoided physical
dereference is tallied separately under
``OpCounters.extra["deref_saved_traversals"]``.

Caveat: forwarding-chain hops (left behind by heap-overflow
relocations, footnote 1) are only re-counted on a physical miss; a
memo hit charges the single logical traversal but not the chain walk.
Relations that have experienced relocations are therefore outside the
strict counter-equivalence contract (and outside the paper's steady-
state measurements, which never relocate).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.instrument import count_event, count_traverse
from repro.obs import runtime as obs_runtime
from repro.storage.relation import Relation
from repro.storage.temporary import ResultDescriptor
from repro.storage.tuples import TupleRef

#: The extra-counter name under which avoided physical dereferences are
#: reported (see ``OpCounters.extra``).
DEREF_SAVED_COUNTER = "deref_saved_traversals"

_MISS = object()


def _attach_flush(extract: Callable, pending: list) -> Callable:
    """Give ``extract`` a ``flush()`` draining its hit/miss tallies.

    Per-call bookkeeping is a bare list-cell increment (``pending`` is
    ``[hits, misses]``) — the hot path of every cached extractor — and
    ``flush`` publishes the accumulated savings with one
    :func:`count_event` call.  When observability metrics are active,
    the tallies also land in the
    :class:`~repro.obs.metrics.MetricsRegistry` (and from there the
    Prometheus-text exporter) as ``deref_saved_traversals_total`` and
    per-outcome ``deref_cache_requests_total`` counters.  Callers flush
    at operator (or batch) boundaries; flushing is idempotent.
    """

    def flush() -> None:
        hits, misses = pending
        if hits:
            count_event(DEREF_SAVED_COUNTER, hits)
        if hits or misses:
            act = obs_runtime.active()
            if act is not None and act.metrics is not None:
                if hits:
                    act.metric_inc(
                        "deref_saved_traversals_total", hits
                    )
                    act.metric_inc(
                        "deref_cache_requests_total", hits, outcome="hit"
                    )
                if misses:
                    act.metric_inc(
                        "deref_cache_requests_total",
                        misses,
                        outcome="miss",
                    )
            pending[0] = pending[1] = 0

    extract.flush = flush
    return extract


def ref_extractor(
    relation: Relation, field_name: str, counted: bool = False
) -> Callable[[TupleRef], Any]:
    """A memoizing ``ref -> field value`` extractor over one relation.

    With ``counted=False`` no traversal is charged per call — the shape
    scan predicates need (``Relation.read_field`` charges none either);
    callers that batch-count traversals use this variant.  With
    ``counted=True`` every call charges one traversal, mirroring
    ``Relation.key_extractor``.  Either way a memo hit skips the
    physical ``_locate`` + field read; hits accumulate locally and land
    under :data:`DEREF_SAVED_COUNTER` when the caller invokes the
    extractor's ``flush()``.
    """
    position = relation.physical_schema.position(field_name)
    locate = relation._locate
    memo: dict = {}
    miss = _MISS
    pending = [0, 0]

    if counted:

        def extract(ref: TupleRef) -> Any:
            count_traverse()
            value = memo.get(ref, miss)
            if value is miss:
                part, slot = locate(ref)
                value = part.read_field(slot, position)
                memo[ref] = value
                pending[1] += 1
            else:
                pending[0] += 1
            return value

    else:

        def extract(ref: TupleRef) -> Any:
            value = memo.get(ref, miss)
            if value is miss:
                part, slot = locate(ref)
                value = part.read_field(slot, position)
                memo[ref] = value
                pending[1] += 1
            else:
                pending[0] += 1
            return value

    return _attach_flush(extract, pending)


def row_extractor(
    descriptor: ResultDescriptor, column_name: str, counted: bool = False
) -> Callable[[Tuple[TupleRef, ...]], Any]:
    """A memoizing ``pointer row -> column value`` extractor.

    The drop-in counterpart of ``TemporaryList.value_extractor``: with
    ``counted=True`` it charges the same one-traversal-per-call, but a
    memo hit (keyed by the row's source pointer, so rows sharing a base
    tuple share the memo) skips the physical work.  ``counted=False``
    is for compiled batch passes that charge traversals in bulk.  Hits
    accumulate locally; callers publish them via ``extract.flush()``.
    """
    col = descriptor.column(column_name)
    relation = descriptor.sources[col.source]
    position = relation.physical_schema.position(col.field)
    source = col.source
    locate = relation._locate
    memo: dict = {}
    miss = _MISS
    pending = [0, 0]

    if counted:

        def extract(row: Tuple[TupleRef, ...]) -> Any:
            count_traverse()
            ref = row[source]
            value = memo.get(ref, miss)
            if value is miss:
                part, slot = locate(ref)
                value = part.read_field(slot, position)
                memo[ref] = value
                pending[1] += 1
            else:
                pending[0] += 1
            return value

    else:

        def extract(row: Tuple[TupleRef, ...]) -> Any:
            ref = row[source]
            value = memo.get(ref, miss)
            if value is miss:
                part, slot = locate(ref)
                value = part.read_field(slot, position)
                memo[ref] = value
                pending[1] += 1
            else:
                pending[0] += 1
            return value

    return _attach_flush(extract, pending)


def raw_ref_extractor(
    relation: Relation, field_name: str
) -> Callable[[TupleRef], Any]:
    """An unmemoized, uncounted ``ref -> field value`` reader.

    For predicate fields the compiled mask reads exactly once per item:
    there the memo can never hit, so its dict (and ``TupleRef`` hash)
    overhead is pure loss and the plain dereference is cheapest.
    """
    position = relation.physical_schema.position(field_name)
    locate = relation._locate

    def extract(ref: TupleRef) -> Any:
        part, slot = locate(ref)
        return part.read_field(slot, position)

    return extract


def raw_row_extractor(
    descriptor: ResultDescriptor, column_name: str
) -> Callable[[Tuple[TupleRef, ...]], Any]:
    """An unmemoized, uncounted ``pointer row -> column value`` reader.

    For kernels that touch each row's key exactly once and charge the
    traversals in bulk themselves (e.g. hash duplicate elimination):
    there a memo can never hit, so the plain dereference is cheapest.
    """
    col = descriptor.column(column_name)
    relation = descriptor.sources[col.source]
    position = relation.physical_schema.position(col.field)
    source = col.source
    locate = relation._locate

    def extract(row: Tuple[TupleRef, ...]) -> Any:
        part, slot = locate(row[source])
        return part.read_field(slot, position)

    return extract


class ScanFieldAccess:
    """Field access for scan predicates: items are raw tuple refs.

    Mirrors the tuple engine's scan counting — ``Relation.read_field``
    charges *no* traversal — so compiled scan passes charge none
    either (``counts_traversals`` is False).
    """

    counts_traversals = False

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._extractors: dict = {}

    def extractor(
        self, field_name: str, memoize: bool = True
    ) -> Callable[[TupleRef], Any]:
        """Field extractor; ``memoize=False`` returns a raw reader.

        The compiler passes ``memoize=False`` for fields its predicate
        reads at most once per item — there a memo can never hit, so
        skipping it removes the dict/hash overhead without losing any
        reportable savings.
        """
        key = (field_name, memoize)
        ext = self._extractors.get(key)
        if ext is None:
            if memoize:
                ext = ref_extractor(
                    self.relation, field_name, counted=False
                )
            else:
                ext = raw_ref_extractor(self.relation, field_name)
            self._extractors[key] = ext
        return ext

    def reader(self, ref: TupleRef) -> Callable[[str], Any]:
        """A per-item field reader for uncompilable predicate leaves."""
        extractor = self.extractor

        def read(field_name: str) -> Any:
            return extractor(field_name)(ref)

        return read

    def flush(self) -> None:
        """Publish every extractor's accumulated dereference savings."""
        for ext in self._extractors.values():
            flush = getattr(ext, "flush", None)
            if flush is not None:
                flush()


class RowFieldAccess:
    """Field access for filter predicates: items are pointer rows.

    Resolves predicate field names with the executor's filter semantics
    (exact label, unique qualified suffix, ``Relation.field``) and
    mirrors the tuple engine's one-traversal-per-read charge: compiled
    passes charge it in bulk (``counts_traversals`` is True), fallback
    readers charge it per read.
    """

    counts_traversals = True

    def __init__(self, descriptor: ResultDescriptor, resolve_name) -> None:
        self.descriptor = descriptor
        self._resolve_name = resolve_name
        self._extractors: dict = {}

    def extractor(
        self, field_name: str, memoize: bool = True
    ) -> Callable[[Tuple[TupleRef, ...]], Any]:
        """Column extractor; ``memoize=False`` returns a raw reader
        (see :meth:`ScanFieldAccess.extractor`)."""
        column_name = self._resolve_name(field_name)
        key = (column_name, memoize)
        ext = self._extractors.get(key)
        if ext is None:
            if memoize:
                ext = row_extractor(
                    self.descriptor, column_name, counted=False
                )
            else:
                ext = raw_row_extractor(self.descriptor, column_name)
            self._extractors[key] = ext
        return ext

    def reader(self, row: Tuple[TupleRef, ...]) -> Callable[[str], Any]:
        """A per-item field reader for uncompilable predicate leaves."""
        extractor = self.extractor

        def read(field_name: str) -> Any:
            count_traverse()
            return extractor(field_name)(row)

        return read

    def flush(self) -> None:
        """Publish every extractor's accumulated dereference savings."""
        for ext in self._extractors.values():
            flush = getattr(ext, "flush", None)
            if flush is not None:
                flush()
