"""Batch-pipelined execution (the vectorized engine).

A second execution path over the *same* plan trees as
:class:`repro.query.executor.Executor`: operators exchange fixed-size
batches of tuple-pointer rows through generators, predicates are
compiled once per operator into eval-free closure chains, and a
per-operator dereference cache memoizes (tuple, field) extraction so
each pointer traversal is *performed* at most once per operator while
still being *counted* every time the paper's cost model charges it.

The package is organised as:

* :mod:`~repro.query.vectorized.config` — :class:`ExecutionConfig`,
  selected through ``MainMemoryDatabase.configure_execution``;
* :mod:`~repro.query.vectorized.deref` — memoizing extractors and the
  ``deref_saved_traversals`` savings counter;
* :mod:`~repro.query.vectorized.compile` — predicate → batch-mask
  compiler with short-circuit cascades;
* :mod:`~repro.query.vectorized.kernels` — partitioned hash-join
  build/probe and key-cached sort kernels;
* :mod:`~repro.query.vectorized.engine` — :class:`BatchExecutor`, the
  drop-in :class:`~repro.query.executor.Executor` subclass.

The counter-equivalence contract (see DESIGN.md §3.8): for scan,
filter, index, sort, projection and every non-hash join path the batch
engine produces the *same* comparison / traversal / hash / move totals
as the tuple-at-a-time engine — differential tests assert it — while
the dereference cache's physical savings are reported separately under
``OpCounters.extra["deref_saved_traversals"]``.  Only the hash
equi-join swaps in a genuinely different (partitioned, dict-based)
kernel, whose op counts are bounded above by the tuple engine's.
"""

from repro.query.vectorized.config import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MORSEL_SIZE,
    ENGINES,
    POOL_MODES,
    ExecutionConfig,
)
from repro.query.vectorized.deref import (
    DEREF_SAVED_COUNTER,
    ref_extractor,
    row_extractor,
)
from repro.query.vectorized.engine import BatchExecutor

__all__ = [
    "BatchExecutor",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MORSEL_SIZE",
    "DEREF_SAVED_COUNTER",
    "ENGINES",
    "ExecutionConfig",
    "POOL_MODES",
    "ref_extractor",
    "row_extractor",
]
