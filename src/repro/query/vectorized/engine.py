"""The batch-pipelined executor.

:class:`BatchExecutor` evaluates the same plan trees as the tuple
engine but moves rows between operators in fixed-size batches through
generators: a Scan -> Filter -> Project chain never materialises a
``TemporaryList`` between nodes, only at the root.  Each operator
compiles its predicate once (:mod:`~repro.query.vectorized.compile`),
extracts fields through per-operator dereference caches
(:mod:`~repro.query.vectorized.deref`), and the two hash-based
operators — hash equi-joins and hash duplicate elimination — run the
batch kernels (:mod:`~repro.query.vectorized.kernels`), whose counts
are elementwise *bounded above* by the tuple engine's rather than
equal.

Everything else — index leaves, the non-hash join algorithms, sorting,
sort-based duplicate elimination — deliberately *reuses* the
instrumented reference algorithms, only swapping in cached key
extractors: op totals stay identical to the tuple engine (the
counter-equivalence contract) while the physical dereferences behind
them collapse.

Two execution modes:

* **pipelined** (the default): ``_stream`` recursively builds a
  generator pipeline; batches flow straight through Filter/Project and
  through hash-join probes.
* **eager**: when an observability tracer is active (per-operator spans
  need one span per materialised node, and EXPLAIN ANALYZE renders
  rows-out per operator) or a result cache is attached (subtree
  memoization needs materialised subtree results), each node
  materialises its child first and then applies the same batch kernels
  to the child's rows as one big batch.  The kernels are shared, so
  op counts are identical in either mode.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Iterator, List, Tuple

from repro.errors import PlanError
from repro.instrument import count_traverse
from repro.obs import runtime as obs_runtime
from repro.query.executor import Executor, filter_column_resolver
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.project import project_sort_scan
from repro.query.vectorized.compile import compile_predicate
from repro.query.vectorized.config import DEFAULT_BATCH_SIZE
from repro.query.vectorized.deref import (
    RowFieldAccess,
    ScanFieldAccess,
    raw_row_extractor,
    row_extractor,
)
from repro.query.vectorized.kernels import (
    build_hash_table,
    dedup_hash_rows,
    probe_hash_table,
    sort_rows_cached,
)
from repro.storage.temporary import ResultDescriptor, TemporaryList
from repro.storage.tuples import TupleRef

Row = Tuple[TupleRef, ...]
Batches = Iterator[List[Row]]


def _flush_saved(*extractors: Callable) -> None:
    """Publish accumulated dereference savings of cached extractors.

    Cached extractors tally memo hits in a local cell (the hot path);
    operators call this at their boundaries to fold the tally into
    ``OpCounters.extra`` via one bulk ``count_event``.  Extractors
    without a ``flush`` attribute (raw readers, ``self_ref``) are
    skipped.
    """
    for extractor in extractors:
        flush = getattr(extractor, "flush", None)
        if flush is not None:
            flush()


class BatchExecutor(Executor):
    """Batch-at-a-time evaluation of the tuple engine's plan trees.

    A drop-in :class:`~repro.query.executor.Executor`: same
    constructor contract (plus ``batch_size``), same ``execute`` entry
    point, same result-cache and span integration, same results — and,
    outside hash equi-joins, the same Section 3.1 op totals.
    """

    engine_name = "batch"

    def __init__(
        self,
        catalog,
        result_cache=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        super().__init__(catalog, result_cache)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = int(batch_size)
        #: Cached key extractors handed to reference join algorithms,
        #: awaiting a hit-tally flush when the algorithm returns.
        self._live_keys: List[Callable] = []

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def _dispatch(self, plan: PlanNode) -> TemporaryList:
        if self._eager_mode():
            return super()._dispatch(plan)
        descriptor, batches = self._stream(plan)
        result = TemporaryList(descriptor)
        for batch in batches:
            result.extend(batch)
        return result

    def _eager_mode(self) -> bool:
        """Materialise node-by-node (spans / subtree result cache)?"""
        obs = obs_runtime.active()
        if obs is not None and obs.tracer is not None:
            return True
        return self.result_cache is not None

    # ------------------------------------------------------------------ #
    # pipelined mode
    # ------------------------------------------------------------------ #

    def _chunks(self, rows: List[Row]) -> Batches:
        size = self.batch_size
        for start in range(0, len(rows), size):
            yield rows[start : start + size]

    def _stream(self, plan: PlanNode) -> Tuple[ResultDescriptor, Batches]:
        """Evaluate ``plan`` to (descriptor, iterator of row batches)."""
        if isinstance(plan, ScanNode):
            return self._stream_scan(plan)
        if isinstance(plan, FilterNode):
            return self._stream_filter(plan)
        if isinstance(plan, ProjectNode):
            return self._stream_project(plan)
        if (
            isinstance(plan, JoinNode)
            and plan.op == "="
            and plan.method == "hash"
        ):
            return self._stream_hash_join(plan)
        # Index leaves and the blocking join methods: evaluate the node
        # whole (children recurse back through this engine) and chunk.
        result = super()._dispatch(plan)
        return result.descriptor, self._chunks(result.rows())

    def _stream_scan(
        self, node: ScanNode
    ) -> Tuple[ResultDescriptor, Batches]:
        relation = self.catalog.relation(node.relation_name)
        descriptor = ResultDescriptor.whole_relation(relation)
        mask = None
        if node.predicate is not None:
            mask = compile_predicate(
                node.predicate, ScanFieldAccess(relation)
            )
        size = self.batch_size

        def generate() -> Batches:
            refs = iter(relation.any_index().scan())
            while True:
                chunk = list(islice(refs, size))
                if not chunk:
                    return
                if mask is not None:
                    flags = mask(chunk)
                    rows = [
                        (ref,) for ref, keep in zip(chunk, flags) if keep
                    ]
                else:
                    rows = [(ref,) for ref in chunk]
                if rows:
                    yield rows

        return descriptor, generate()

    def _stream_filter(
        self, node: FilterNode
    ) -> Tuple[ResultDescriptor, Batches]:
        descriptor, batches = self._stream(node.child)
        mask = compile_predicate(
            node.predicate, self._row_access(descriptor)
        )

        def generate() -> Batches:
            for batch in batches:
                flags = mask(batch)
                kept = [row for row, keep in zip(batch, flags) if keep]
                if kept:
                    yield kept

        return descriptor, generate()

    def _stream_project(
        self, node: ProjectNode
    ) -> Tuple[ResultDescriptor, Batches]:
        descriptor, batches = self._stream(node.child)
        projected = descriptor.project(list(node.columns))
        if not node.deduplicate:
            # Descriptor-only projection: the batches pass through.
            return projected, batches

        def generate() -> Batches:
            rows: List[Row] = []
            for batch in batches:
                rows.extend(batch)
            yield from self._chunks(self._dedup_rows(projected, rows, node))

        return projected, generate()

    def _stream_hash_join(
        self, node: JoinNode
    ) -> Tuple[ResultDescriptor, Batches]:
        left_desc, left_batches = self._stream(node.left)
        right_desc, right_batches = self._stream(node.right)
        descriptor = self._join_descriptor(left_desc, right_desc)

        def generate() -> Batches:
            inner_rows: List[Row] = []
            for batch in right_batches:
                inner_rows.extend(batch)
            inner_key, inner_cost = self._batch_key(
                right_desc, node.right_col
            )
            with obs_runtime.span("hash_join.build", "join_phase"):
                table = build_hash_table(inner_rows, inner_key)
                count_traverse(len(inner_rows) * inner_cost)
            outer_key, outer_cost = self._batch_key(
                left_desc, node.left_col
            )
            with obs_runtime.span("hash_join.probe", "join_phase"):
                for batch in left_batches:
                    pairs = probe_hash_table(table, batch, outer_key)
                    count_traverse(len(batch) * outer_cost)
                    if pairs:
                        yield pairs

        return descriptor, generate()

    # ------------------------------------------------------------------ #
    # shared batch operators (used by both modes)
    # ------------------------------------------------------------------ #

    def _row_access(self, descriptor: ResultDescriptor) -> RowFieldAccess:
        return RowFieldAccess(
            descriptor, filter_column_resolver(descriptor)
        )

    def _batch_key(
        self, descriptor: ResultDescriptor, column: str
    ) -> Tuple[Callable[[Row], Any], int]:
        """Hash-kernel join key: ``(extractor, traversals per row)``.

        The kernel keys each row exactly once, so the extractor is a
        raw (unmemoized) reader and the caller charges the logical
        traversals in bulk — one per keyed row, what the tuple engine's
        per-call extractor charges — after the build/probe pass.
        ``REF_COLUMN`` keys on the row's own pointer, which the tuple
        engine reads without a traversal charge.
        """
        if column == REF_COLUMN:
            if len(descriptor.sources) != 1:
                raise PlanError(
                    f"{REF_COLUMN} is ambiguous over "
                    f"{len(descriptor.sources)} sources"
                )

            def self_ref(row: Row) -> TupleRef:
                return row[0]

            return self_ref, 0
        return raw_row_extractor(descriptor, column), 1

    def _dedup_rows(
        self, descriptor: ResultDescriptor, rows: List[Row], node: ProjectNode
    ) -> List[Row]:
        """Duplicate elimination.

        ``hash`` runs the dict-based batch kernel (first occurrence
        wins, same rows/order as ``project_hash``, elementwise cheaper
        counts — like the hash join, outside the strict equivalence
        contract).  ``sort_scan`` reuses the paper's sort-based
        algorithm unchanged with dereference-cached keys, so its op
        totals match the tuple engine exactly.
        """
        if node.dedup_method == "hash":
            raw = [
                raw_row_extractor(descriptor, name) for name in node.columns
            ]
            if len(raw) == 1:
                key_of = raw[0]
            else:

                def key_of(row: Row) -> Tuple[Any, ...]:
                    return tuple(extract(row) for extract in raw)

            return dedup_hash_rows(rows, key_of, keys_per_row=len(raw))
        extractors = [
            row_extractor(descriptor, name, counted=True)
            for name in node.columns
        ]

        def row_key(row: Row) -> Tuple[Any, ...]:
            return tuple(extract(row) for extract in extractors)

        unique = project_sort_scan(rows, row_key)
        _flush_saved(*extractors)
        return unique

    # ------------------------------------------------------------------ #
    # eager-mode operator overrides (spans / result cache active)
    # ------------------------------------------------------------------ #

    def _execute_scan(self, node: ScanNode) -> TemporaryList:
        relation = self.catalog.relation(node.relation_name)
        refs = list(relation.any_index().scan())
        if node.predicate is not None:
            mask = compile_predicate(
                node.predicate, ScanFieldAccess(relation)
            )
            flags = mask(refs)
            refs = [ref for ref, keep in zip(refs, flags) if keep]
        return TemporaryList.from_refs(relation, refs)

    def _execute_filter(self, node: FilterNode) -> TemporaryList:
        child = self.execute(node.child)
        mask = compile_predicate(
            node.predicate, self._row_access(child.descriptor)
        )
        rows = child.rows()
        flags = mask(rows)
        kept = [row for row, keep in zip(rows, flags) if keep]
        return TemporaryList(child.descriptor, kept)

    def _execute_project(self, node: ProjectNode) -> TemporaryList:
        child = self.execute(node.child)
        projected = child.project(list(node.columns))
        if not node.deduplicate:
            return projected
        unique = self._dedup_rows(
            projected.descriptor, projected.rows(), node
        )
        return TemporaryList(projected.descriptor, unique)

    def _execute_join(self, node: JoinNode) -> TemporaryList:
        if node.op == "=" and node.method == "hash":
            left = self.execute(node.left)
            right = self.execute(node.right)
            inner_key, inner_cost = self._batch_key(
                right.descriptor, node.right_col
            )
            outer_key, outer_cost = self._batch_key(
                left.descriptor, node.left_col
            )
            with obs_runtime.span("hash_join.build", "join_phase"):
                table = build_hash_table(right.rows(), inner_key)
                count_traverse(len(right.rows()) * inner_cost)
            with obs_runtime.span("hash_join.probe", "join_phase"):
                rows = probe_hash_table(table, left.rows(), outer_key)
                count_traverse(len(left.rows()) * outer_cost)
            descriptor = self._join_descriptor(
                left.descriptor, right.descriptor
            )
            return TemporaryList(descriptor, rows)
        # Non-hash joins reuse the reference algorithms; the overridden
        # _key_extractor below hands them dereference-cached keys, whose
        # hit tallies are flushed here once the algorithm finishes.
        marker = len(self._live_keys)
        result = super()._execute_join(node)
        _flush_saved(*self._live_keys[marker:])
        del self._live_keys[marker:]
        return result

    # ------------------------------------------------------------------ #
    # cached-key hooks into the reference algorithms
    # ------------------------------------------------------------------ #

    def _key_extractor(
        self, rows_list: TemporaryList, column: str
    ) -> Callable[[Row], Any]:
        if column == REF_COLUMN:
            return super()._key_extractor(rows_list, column)
        extractor = row_extractor(rows_list.descriptor, column, counted=True)
        self._live_keys.append(extractor)
        return extractor

    def sort_rows(
        self, result: TemporaryList, column: str
    ) -> List[Row]:
        extractor = row_extractor(result.descriptor, column, counted=True)
        rows = sort_rows_cached(list(result.rows()), extractor)
        _flush_saved(extractor)
        return rows
