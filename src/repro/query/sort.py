"""The paper's sorting routine: quicksort with an insertion-sort cutoff.

Footnote 6: "We ran a test to determine the optimal subarray size for
switching from quicksort to insertion sort; the optimal subarray size was
10."  The sort-merge join and sort-scan duplicate elimination both sort
with this routine, and the benchmarks count its comparisons and moves.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.instrument import count_compare, count_move

#: "The optimal subarray size was 10."
INSERTION_SORT_CUTOFF = 10


def insertion_sort(
    items: List[Any],
    key_of: Callable[[Any], Any] = None,
    lo: int = 0,
    hi: Optional[int] = None,
) -> None:
    """In-place insertion sort of ``items[lo:hi+1]`` (instrumented).

    Nearly sorted input costs almost nothing — the effect the paper notes
    in the high-duplicate projection test, where "the subarray in
    quicksort is often already sorted by the time it is passed to the
    insertion sort".
    """
    key = key_of if key_of is not None else _identity
    if hi is None:
        hi = len(items) - 1
    for i in range(lo + 1, hi + 1):
        current = items[i]
        current_key = key(current)
        j = i - 1
        while j >= lo:
            count_compare()
            if key(items[j]) <= current_key:
                break
            items[j + 1] = items[j]
            count_move(1)
            j -= 1
        items[j + 1] = current
        count_move(1)


def _identity(x: Any) -> Any:
    return x


def quicksort(items: List[Any], key_of: Callable[[Any], Any] = None) -> None:
    """In-place quicksort with median-of-three pivots and the paper's
    insertion-sort cutoff at subarrays of 10 or fewer elements."""
    key = key_of if key_of is not None else _identity
    _quicksort(items, key, 0, len(items) - 1)


def _quicksort(
    items: List[Any], key: Callable[[Any], Any], lo: int, hi: int
) -> None:
    # Iterate on the larger half, recurse on the smaller: O(log n) stack.
    while hi - lo >= INSERTION_SORT_CUTOFF:
        pivot_key = _median_of_three(items, key, lo, hi)
        lt, gt = _partition_three_way(items, key, lo, hi, pivot_key)
        if lt - lo < hi - gt:
            _quicksort(items, key, lo, lt - 1)
            lo = gt + 1
        else:
            _quicksort(items, key, gt + 1, hi)
            hi = lt - 1
    if hi > lo:
        insertion_sort(items, key, lo, hi)


def _median_of_three(
    items: List[Any], key: Callable[[Any], Any], lo: int, hi: int
) -> Any:
    mid = (lo + hi) // 2
    a, b, c = key(items[lo]), key(items[mid]), key(items[hi])
    count_compare(3)
    if a < b:
        if b < c:
            return b
        return a if a < c else c
    if a < c:
        return a
    return b if b < c else c


def _partition_three_way(
    items: List[Any],
    key: Callable[[Any], Any],
    lo: int,
    hi: int,
    pivot_key: Any,
):
    """Dutch-national-flag partition around ``pivot_key``.

    Returns ``(lt, gt)``: items[lo:lt] < pivot, items[lt:gt+1] == pivot,
    items[gt+1:hi+1] > pivot.  The three-way split keeps quicksort linear
    on high-duplicate columns, which the projection test (Graph 12)
    exercises heavily.
    """
    lt, i, gt = lo, lo, hi
    while i <= gt:
        item_key = key(items[i])
        count_compare()
        if item_key < pivot_key:
            items[lt], items[i] = items[i], items[lt]
            count_move(2)
            lt += 1
            i += 1
            continue
        count_compare()
        if item_key > pivot_key:
            items[i], items[gt] = items[gt], items[i]
            count_move(2)
            gt -= 1
        else:
            i += 1
    return lt, gt


def is_sorted(items: List[Any], key_of: Callable[[Any], Any] = None) -> bool:
    """Whether ``items`` is in non-descending key order (uninstrumented)."""
    key = key_of if key_of is not None else _identity
    return all(
        key(items[i]) <= key(items[i + 1]) for i in range(len(items) - 1)
    )
