"""Plan execution: evaluates a plan tree to a temporary list.

Every node produces a :class:`~repro.storage.temporary.TemporaryList` of
tuple-pointer rows; values are only materialised where an operator needs a
key (through counted pointer traversals), never copied into intermediate
results — the paper's central storage discipline.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.errors import PlanError
from repro.obs import runtime as obs_runtime
from repro.obs.explain import node_label
from repro.query import join as join_ops
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexMultiLookupNode,
    IndexRangeNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import THETA_COMPARATORS
from repro.query.project import project_hash, project_sort_scan
from repro.query.select import select_tree_range
from repro.query.sort import quicksort
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.temporary import (
    ResultColumn,
    ResultDescriptor,
    TemporaryList,
)
from repro.storage.tuples import TupleRef


def filter_column_resolver(
    descriptor: ResultDescriptor,
) -> Callable[[str], str]:
    """Map a predicate field name to an output column name.

    A join qualifies colliding names as ``Relation.field``.  Resolution
    tries three ways, in order: exact output name; unambiguous bare-name
    suffix of a qualified label; an explicit ``Relation.field``
    qualifier matched against each column's source relation.  Both
    execution engines share this resolver so a predicate binds to the
    same column under either.
    """
    names = set(descriptor.column_names)
    suffixes: dict = {}
    qualified: dict = {}
    for col in descriptor.columns:
        if "." in col.name:
            suffixes.setdefault(col.name.rsplit(".", 1)[1], []).append(
                col.name
            )
        source_name = descriptor.sources[col.source].name
        qualified.setdefault(f"{source_name}.{col.field}", []).append(
            col.name
        )

    def resolve(field_name: str) -> str:
        if field_name in names:
            return field_name
        candidates = suffixes.get(field_name, [])
        if len(candidates) != 1:
            candidates = qualified.get(field_name, [])
        if len(candidates) == 1:
            return candidates[0]
        raise PlanError(
            f"predicate references unknown or ambiguous column "
            f"{field_name!r}; have {descriptor.column_names}"
        )

    return resolve


def join_descriptor(
    left: ResultDescriptor, right: ResultDescriptor
) -> ResultDescriptor:
    """Concatenate two descriptors, qualifying colliding names.

    Both execution engines and the join-order planner (which simulates
    descriptor folding to predict output labels without executing) share
    this one definition.
    """
    sources = list(left.sources) + list(right.sources)
    offset = len(left.sources)
    names_left = [c.name for c in left.columns]
    names_right = [c.name for c in right.columns]
    collisions = set(names_left) & set(names_right)
    used: set = set()

    def unique_label(label: str) -> str:
        # Self-joins can collide even after qualification; an ordinal
        # suffix keeps every output column addressable.
        candidate, n = label, 1
        while candidate in used:
            n += 1
            candidate = f"{label}_{n}"
        used.add(candidate)
        return candidate

    columns: List[ResultColumn] = []
    for col in left.columns:
        label = col.name
        if label in collisions:
            label = f"{left.sources[col.source].name}.{col.name}"
        columns.append(
            ResultColumn(col.source, col.field, unique_label(label))
        )
    for col in right.columns:
        label = col.name
        if label in collisions:
            label = f"{right.sources[col.source].name}.{col.name}"
        columns.append(
            ResultColumn(col.source + offset, col.field, unique_label(label))
        )
    return ResultDescriptor(sources, columns)


def plan_descriptor(plan: PlanNode, catalog: Catalog) -> ResultDescriptor:
    """The descriptor ``plan`` will produce, computed without executing.

    Mirrors each operator's descriptor construction exactly: leaves
    expose their whole relation, filters pass through, joins fold via
    :func:`join_descriptor`, projection narrows.
    """
    if isinstance(
        plan,
        (ScanNode, IndexLookupNode, IndexMultiLookupNode, IndexRangeNode),
    ):
        return ResultDescriptor.whole_relation(
            catalog.relation(plan.relation_name)
        )
    if isinstance(plan, FilterNode):
        return plan_descriptor(plan.child, catalog)
    if isinstance(plan, JoinNode):
        return join_descriptor(
            plan_descriptor(plan.left, catalog),
            plan_descriptor(plan.right, catalog),
        )
    if isinstance(plan, ProjectNode):
        return plan_descriptor(plan.child, catalog).project(list(plan.columns))
    raise PlanError(f"unknown plan node {type(plan).__name__}")


class Executor:
    """Evaluates plan trees against a catalog.

    With a :class:`~repro.cache.result_cache.ResultCache` attached,
    ``execute`` memoizes *whole subtree* results: the recursive
    ``execute`` calls inside join and filter operators hit the cache for
    any previously computed subtree whose relations are unchanged.
    """

    #: Name reported by ``EXPLAIN``-style tooling and benchmarks; the
    #: batch engine overrides it.
    engine_name = "tuple"

    def __init__(self, catalog: Catalog, result_cache=None) -> None:
        self.catalog = catalog
        self.result_cache = result_cache

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def execute(self, plan: PlanNode) -> TemporaryList:
        """Evaluate ``plan`` to a temporary list (through the result
        cache, when one is attached).

        With observability active, every node evaluation — including the
        recursive calls for join and filter children — runs inside an
        ``operator`` span carrying the node's inclusive counters and
        output cardinality.
        """
        obs = obs_runtime.active()
        if obs is None or obs.tracer is None:
            return self._execute_cached(plan)
        with obs.tracer.span(
            node_label(plan), kind="operator", _node=plan
        ) as span:
            result = self._execute_cached(plan)
            span.rows_out = len(result)
            return result

    def _execute_cached(self, plan: PlanNode) -> TemporaryList:
        cache = self.result_cache
        if cache is None:
            return self._dispatch(plan)
        hit = cache.lookup_plan(plan)
        if hit is not None:
            return hit
        result = self._dispatch(plan)
        cache.store_plan(plan, result)
        return result

    def _dispatch(self, plan: PlanNode) -> TemporaryList:
        if isinstance(plan, ScanNode):
            return self._execute_scan(plan)
        if isinstance(plan, IndexLookupNode):
            return self._execute_lookup(plan)
        if isinstance(plan, IndexMultiLookupNode):
            return self._execute_multi_lookup(plan)
        if isinstance(plan, IndexRangeNode):
            return self._execute_range(plan)
        if isinstance(plan, FilterNode):
            return self._execute_filter(plan)
        if isinstance(plan, JoinNode):
            return self._execute_join(plan)
        if isinstance(plan, ProjectNode):
            return self._execute_project(plan)
        raise PlanError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------ #
    # leaves
    # ------------------------------------------------------------------ #

    def _execute_scan(self, node: ScanNode) -> TemporaryList:
        relation = self.catalog.relation(node.relation_name)
        refs = list(relation.any_index().scan())
        if node.predicate is not None:
            refs = [
                ref
                for ref in refs
                if node.predicate.matches(
                    lambda field_name, r=ref: relation.read_field(r, field_name)
                )
            ]
        return TemporaryList.from_refs(relation, refs)

    def _execute_lookup(self, node: IndexLookupNode) -> TemporaryList:
        relation = self.catalog.relation(node.relation_name)
        index = None
        if node.prefer in (None, "hash"):
            index = relation.index_on(node.field_name, ordered=False)
        if index is None and node.prefer in (None, "tree"):
            index = relation.index_on(node.field_name, ordered=True)
        if index is None and node.prefer == "hash":
            raise PlanError(
                f"{node.relation_name}.{node.field_name} has no hash index"
            )
        if index is None:
            raise PlanError(
                f"{node.relation_name}.{node.field_name} has no index; "
                "use a Scan with a predicate instead"
            )
        refs = index.probe_all(node.key)
        return TemporaryList.from_refs(relation, refs)

    def _execute_multi_lookup(
        self, node: IndexMultiLookupNode
    ) -> TemporaryList:
        """Union of exact lookups, de-duplicated by tuple pointer."""
        relation = self.catalog.relation(node.relation_name)
        index = None
        if node.prefer in (None, "hash"):
            index = relation.index_on(node.field_name, ordered=False)
        if index is None and node.prefer in (None, "tree"):
            index = relation.index_on(node.field_name, ordered=True)
        if index is None:
            raise PlanError(
                f"{node.relation_name}.{node.field_name} has no index for "
                "a multi-lookup"
            )
        refs = []
        seen = set()
        for key in node.keys:
            for ref in index.probe_all(key):
                if ref not in seen:
                    seen.add(ref)
                    refs.append(ref)
        return TemporaryList.from_refs(relation, refs)

    def _execute_range(self, node: IndexRangeNode) -> TemporaryList:
        relation = self.catalog.relation(node.relation_name)
        index = relation.index_on(node.field_name, ordered=True)
        if index is None:
            raise PlanError(
                f"{node.relation_name}.{node.field_name} has no ordered "
                "index for a range lookup"
            )
        with obs_runtime.span(
            f"IndexProbe[{index.kind}] range", "index", index_kind=index.kind
        ) as probe:
            refs = select_tree_range(
                index, node.low, node.high, node.include_low, node.include_high
            )
            if probe is not None:
                probe.rows_out = len(refs)
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc("index_probes_total", kind=index.kind)
        return TemporaryList.from_refs(relation, refs)

    # ------------------------------------------------------------------ #
    # filter / project
    # ------------------------------------------------------------------ #

    def _execute_filter(self, node: FilterNode) -> TemporaryList:
        child = self.execute(node.child)
        extractors = {
            name: child.value_extractor(name)
            for name in child.descriptor.column_names
        }
        resolve_name = filter_column_resolver(child.descriptor)

        def reader_for(row: Tuple[TupleRef, ...]) -> Callable[[str], Any]:
            def read(field_name: str) -> Any:
                return extractors[resolve_name(field_name)](row)
            return read

        kept = [row for row in child if node.predicate.matches(reader_for(row))]
        return TemporaryList(child.descriptor, kept)

    def _execute_project(self, node: ProjectNode) -> TemporaryList:
        child = self.execute(node.child)
        projected = child.project(list(node.columns))
        if not node.deduplicate:
            return projected
        extractors = [
            projected.value_extractor(name) for name in node.columns
        ]

        def row_key(row: Tuple[TupleRef, ...]) -> Tuple[Any, ...]:
            return tuple(extract(row) for extract in extractors)

        if node.dedup_method == "hash":
            unique_rows = project_hash(projected.rows(), row_key)
        else:
            unique_rows = project_sort_scan(projected.rows(), row_key)
        return TemporaryList(projected.descriptor, unique_rows)

    # ------------------------------------------------------------------ #
    # ordering
    # ------------------------------------------------------------------ #

    def sort_rows(
        self, result: TemporaryList, column: str
    ) -> List[Tuple[TupleRef, ...]]:
        """ORDER BY support: the result's rows sorted by one column.

        Uses the paper's instrumented quicksort; the batch engine
        overrides the key extractor with a dereference-cached one (same
        counts, one physical deref per row instead of one per
        comparison).
        """
        extractor = result.value_extractor(column)
        rows = list(result.rows())
        quicksort(rows, key_of=extractor)
        return rows

    # ------------------------------------------------------------------ #
    # join
    # ------------------------------------------------------------------ #

    def _bare_relation(self, plan: PlanNode, method: str) -> Relation:
        if not isinstance(plan, ScanNode) or plan.predicate is not None:
            raise PlanError(
                f"join method {method!r} requires a bare relation scan "
                "(the index lives on the base relation)"
            )
        return self.catalog.relation(plan.relation_name)

    def _key_extractor(
        self, rows_list: TemporaryList, column: str
    ) -> Callable[[Tuple[TupleRef, ...]], Any]:
        if column == REF_COLUMN:
            sources = rows_list.descriptor.sources
            if len(sources) != 1:
                raise PlanError(
                    f"{REF_COLUMN} is ambiguous over {len(sources)} sources"
                )

            def self_ref(row: Tuple[TupleRef, ...]) -> TupleRef:
                return row[0]

            return self_ref
        return rows_list.value_extractor(column)

    def _join_descriptor(
        self, left: ResultDescriptor, right: ResultDescriptor
    ) -> ResultDescriptor:
        """Concatenate two descriptors, qualifying colliding names."""
        return join_descriptor(left, right)

    def _execute_join(self, node: JoinNode) -> TemporaryList:
        method = node.method
        if node.op != "=":
            return self._join_nonequi(node)
        if method == "tree_merge":
            return self._join_tree_merge(node)
        if method == "tree":
            return self._join_tree(node)
        if method == "precomputed":
            return self._join_precomputed(node)

        left = self.execute(node.left)
        right = self.execute(node.right)
        left_key = self._key_extractor(left, node.left_col)
        right_key = self._key_extractor(right, node.right_col)
        if method == "hash":
            pairs = join_ops.hash_join(
                left.rows(), right.rows(), left_key, right_key
            )
        elif method == "sort_merge":
            pairs = join_ops.sort_merge_join(
                left.rows(), right.rows(), left_key, right_key
            )
        elif method == "nested_loops":
            pairs = join_ops.nested_loops_join(
                left.rows(), right.rows(), left_key, right_key
            )
        else:  # pragma: no cover - guarded by JoinNode.__post_init__
            raise PlanError(f"unhandled join method {method!r}")
        descriptor = self._join_descriptor(left.descriptor, right.descriptor)
        rows = [l_row + r_row for l_row, r_row in pairs]
        return TemporaryList(descriptor, rows)

    def _join_nonequi(self, node: JoinNode) -> TemporaryList:
        """Inequality joins: ordered-index range scans or nested loops."""
        left = self.execute(node.left)
        left_key = self._key_extractor(left, node.left_col)
        if node.method == "tree":
            right_rel = self._bare_relation(node.right, "tree")
            index = right_rel.index_on(node.right_col, ordered=True)
            if index is None:
                raise PlanError(
                    f"inequality tree join needs an ordered index on "
                    f"{right_rel.name}.{node.right_col}"
                )
            with obs_runtime.span("tree_join.probe", "join_phase"):
                pairs = join_ops.tree_inequality_join(
                    left.rows(), left_key, index, node.op
                )
            right_desc = ResultDescriptor.whole_relation(right_rel)
            descriptor = self._join_descriptor(left.descriptor, right_desc)
            rows = [l_row + (r_ref,) for l_row, r_ref in pairs]
            return TemporaryList(descriptor, rows)
        right = self.execute(node.right)
        right_key = self._key_extractor(right, node.right_col)
        predicate = THETA_COMPARATORS[node.op]
        pairs = join_ops.theta_join(
            left.rows(), right.rows(), left_key, right_key, predicate
        )
        descriptor = self._join_descriptor(left.descriptor, right.descriptor)
        rows = [l_row + r_row for l_row, r_row in pairs]
        return TemporaryList(descriptor, rows)

    def _join_tree(self, node: JoinNode) -> TemporaryList:
        left = self.execute(node.left)
        right_rel = self._bare_relation(node.right, "tree")
        index = right_rel.index_on(node.right_col, ordered=True)
        if index is None:
            raise PlanError(
                f"tree join needs an ordered index on "
                f"{right_rel.name}.{node.right_col}"
            )
        left_key = self._key_extractor(left, node.left_col)
        with obs_runtime.span("tree_join.probe", "join_phase"):
            pairs = join_ops.tree_join(left.rows(), left_key, index)
        right_desc = ResultDescriptor.whole_relation(right_rel)
        descriptor = self._join_descriptor(left.descriptor, right_desc)
        rows = [l_row + (r_ref,) for l_row, r_ref in pairs]
        return TemporaryList(descriptor, rows)

    def _join_tree_merge(self, node: JoinNode) -> TemporaryList:
        left_rel = self._bare_relation(node.left, "tree_merge")
        right_rel = self._bare_relation(node.right, "tree_merge")
        left_index = left_rel.index_on(node.left_col, ordered=True)
        right_index = right_rel.index_on(node.right_col, ordered=True)
        if left_index is None or right_index is None:
            raise PlanError(
                "tree merge join needs ordered indexes on both join "
                f"columns ({left_rel.name}.{node.left_col}, "
                f"{right_rel.name}.{node.right_col})"
            )
        pairs = join_ops.tree_merge_join(left_index, right_index)
        descriptor = self._join_descriptor(
            ResultDescriptor.whole_relation(left_rel),
            ResultDescriptor.whole_relation(right_rel),
        )
        rows = [(l_ref, r_ref) for l_ref, r_ref in pairs]
        return TemporaryList(descriptor, rows)

    def _join_precomputed(self, node: JoinNode) -> TemporaryList:
        left = self.execute(node.left)
        if node.right_col != REF_COLUMN:
            raise PlanError(
                f"precomputed join matches stored pointers; right_col must "
                f"be {REF_COLUMN!r}"
            )
        sources = left.descriptor.sources
        # The REF field lives in exactly one of the left sources.
        fk_col = left.descriptor.column(node.left_col)
        left_rel = sources[fk_col.source]
        logical = left_rel.schema.field(fk_col.field)
        if logical.references is None:
            raise PlanError(
                f"{left_rel.name}.{fk_col.field} is not a foreign-key "
                "field; precomputed join needs a materialised pointer"
            )
        right_rel = self.catalog.relation(logical.references.relation)
        pointer_of = left.value_extractor(node.left_col)
        pairs = join_ops.precomputed_join(left.rows(), pointer_of)
        right_desc = ResultDescriptor.whole_relation(right_rel)
        descriptor = self._join_descriptor(left.descriptor, right_desc)
        rows = [l_row + (r_ref,) for l_row, r_ref in pairs]
        return TemporaryList(descriptor, rows)
