"""Query processing: selection, join, and projection (paper Section 3).

The operator implementations are *generic*: they work over any sequence of
items with key-extractor functions, so the same code runs both inside the
MM-DBMS executor (items are tuple pointers) and in the standalone
benchmarks that regenerate the paper's graphs (items are plain keys).
"""

from repro.query.join import (
    JoinStatistics,
    hash_join,
    merge_join_sorted,
    nested_loops_join,
    precomputed_join,
    sort_merge_join,
    tree_join,
    tree_merge_join,
)
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Op,
    Predicate,
    between,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.query.project import project_hash, project_sort_scan
from repro.query.select import (
    select_hash,
    select_scan,
    select_tree_exact,
    select_tree_range,
)
from repro.query.sort import insertion_sort, quicksort

__all__ = [
    "Comparison",
    "Conjunction",
    "JoinStatistics",
    "Op",
    "Predicate",
    "between",
    "eq",
    "ge",
    "gt",
    "hash_join",
    "insertion_sort",
    "le",
    "lt",
    "merge_join_sorted",
    "ne",
    "nested_loops_join",
    "precomputed_join",
    "project_hash",
    "project_sort_scan",
    "quicksort",
    "select_hash",
    "select_scan",
    "select_tree_exact",
    "select_tree_range",
    "sort_merge_join",
    "tree_join",
    "tree_merge_join",
]
