"""Grouping and aggregation over temporary lists.

Not part of the paper's operator study, but the natural extension of its
hash-based duplicate elimination: GROUP BY is the same "hash each row,
collapse equal keys" pass, except that instead of discarding duplicates
it folds them into accumulators.  Costs are counted with the same
instrumentation (one hash per row, one comparison per accumulator fold).

Aggregation produces *computed values*, not tuple pointers, so its result
is a :class:`ValueTable` rather than a temporary list — the one place the
engine materialises data that does not live in a base relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.instrument import count_compare, count_hash

#: Supported aggregate function names.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``func(column) AS label``.

    ``column`` may be None for ``COUNT(*)``.
    """

    func: str
    column: Optional[str]
    label: str

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"unknown aggregate {self.func!r}; have "
                f"{AGGREGATE_FUNCTIONS}"
            )
        if self.column is None and self.func != "count":
            raise QueryError(f"{self.func}(*) is not defined; name a column")


class _Accumulator:
    """Streaming accumulator for one aggregate over one group."""

    __slots__ = ("func", "count", "total", "best")

    def __init__(self, func: str) -> None:
        self.func = func
        self.count = 0
        self.total = 0
        self.best: Any = None

    def fold(self, value: Any) -> None:
        count_compare()
        if value is None and self.func != "count":
            return  # SQL semantics: NULLs are ignored by aggregates
        self.count += 1
        if self.func in ("sum", "avg") and value is not None:
            self.total += value
        elif self.func == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif self.func == "max":
            if self.best is None or value > self.best:
                self.best = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        return self.best


class ValueTable:
    """A materialised result: column names plus plain value rows."""

    def __init__(self, columns: Sequence[str], rows: List[Tuple[Any, ...]]) -> None:
        self.columns = list(columns)
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def __getitem__(self, i: int) -> Tuple[Any, ...]:
        return self._rows[i]

    def rows(self) -> List[Tuple[Any, ...]]:
        """The value rows (shared, not copied)."""
        return self._rows

    def materialize(self) -> List[Tuple[Any, ...]]:
        """Uniform API with TemporaryList: the rows are already values."""
        return list(self._rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self._rows]

    def sort_by(self, column: str, descending: bool = False) -> "ValueTable":
        """A copy ordered by one column (stable; comparisons counted).

        Ordering computed values is still Section 3.1 work: each key
        comparison the sort performs is charged through
        ``count_compare`` (an audit found this site previously sorted
        with a raw key lambda, bypassing the instrumentation).
        """
        try:
            position = self.columns.index(column)
        except ValueError:
            raise QueryError(
                f"no column {column!r}; have {self.columns}"
            ) from None
        ordered = sorted(
            self._rows,
            key=lambda row: _CountedKey(row[position]),
            reverse=descending,
        )
        return ValueTable(self.columns, ordered)

    def limit(self, n: int) -> "ValueTable":
        """A copy truncated to the first ``n`` rows."""
        return ValueTable(self.columns, self._rows[:n])


class _CountedKey:
    """Sort key wrapper charging one comparison per ordering test."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_CountedKey") -> bool:
        count_compare()
        return self.value < other.value


def group_aggregate(
    rows: Sequence[Any],
    group_extractors: Sequence[Tuple[str, Callable[[Any], Any]]],
    aggregates: Sequence[AggregateSpec],
    value_extractor_for: Callable[[str], Callable[[Any], Any]],
) -> ValueTable:
    """Hash-group ``rows`` and fold the aggregates.

    ``group_extractors`` is [(column_name, row -> value)]; empty means a
    single global group (plain aggregation).  ``value_extractor_for``
    maps an aggregate's column name to a row-value extractor.
    """
    agg_extractors: List[Optional[Callable[[Any], Any]]] = []
    for spec in aggregates:
        if spec.column is None:
            agg_extractors.append(None)
        else:
            agg_extractors.append(value_extractor_for(spec.column))

    groups: Dict[Tuple[Any, ...], List[_Accumulator]] = {}
    order: List[Tuple[Any, ...]] = []
    for row in rows:
        key = tuple(extract(row) for __, extract in group_extractors)
        count_hash()
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [_Accumulator(spec.func) for spec in aggregates]
            groups[key] = accumulators
            order.append(key)
        for accumulator, extract in zip(accumulators, agg_extractors):
            accumulator.fold(1 if extract is None else extract(row))

    if not group_extractors and not groups:
        # SQL: aggregating an empty input still yields one row.
        groups[()] = [_Accumulator(spec.func) for spec in aggregates]
        order.append(())

    columns = [name for name, __ in group_extractors] + [
        spec.label for spec in aggregates
    ]
    result_rows = [
        key + tuple(acc.result() for acc in groups[key]) for key in order
    ]
    return ValueTable(columns, result_rows)
