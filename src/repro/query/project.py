"""Projection: duplicate elimination (paper Section 3.4).

"Much of the work of the projection phase of a query is implicitly done by
specifying the attributes in the form of result descriptors.  Thus, the
only step requiring any significant processing is the final operation of
removing duplicates."  Two candidate methods were compared:

* :func:`project_hash` — Hashing [DKO84]; duplicates are discarded as they
  are encountered, the table holds |R|/2 buckets, and the cost is linear —
  "the Hashing method is the clear winner";
* :func:`project_sort_scan` — Sort Scan [BBD83]; sort the whole input
  (O(|R| log |R|)), then discard adjacent equal keys in one scan.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.indexes.chained_hash import ChainedBucketHashIndex
from repro.instrument import count_compare
from repro.query.sort import quicksort

KeyOf = Callable[[Any], Any]


def project_hash(
    items: Sequence[Any],
    key_of: KeyOf = None,
    table_size: Optional[int] = None,
) -> List[Any]:
    """Hash-based duplicate elimination.

    The hash table "size was always chosen to be |R|/2" in the paper's
    tests, which the default honours.  As duplicates rise, the table holds
    fewer elements and probes shorten — the falling curve of Graph 12.
    """
    key = key_of if key_of is not None else _identity
    size = table_size if table_size is not None else max(4, len(items) // 2)
    table = ChainedBucketHashIndex(key_of=key, unique=False, table_size=size)
    result: List[Any] = []
    for item in items:
        if table.insert_unless_present(item):
            result.append(item)
    return result


def project_sort_scan(
    items: Sequence[Any],
    key_of: KeyOf = None,
) -> List[Any]:
    """Sort-scan duplicate elimination.

    Sorts a copy of the input with the paper's quicksort, then scans once
    dropping adjacent duplicates.  "Sorting ... realizes no such advantage
    [from duplicates], as it must still sort the entire list before
    eliminating tuples during the scan phase" — except that near-equal
    subarrays make the insertion-sort phase cheaper, the small dip the
    paper notes in Graph 12.
    """
    key = key_of if key_of is not None else _identity
    working = list(items)
    quicksort(working, key)
    result: List[Any] = []
    previous_key: Any = _SENTINEL
    for item in working:
        item_key = key(item)
        count_compare()
        if previous_key is _SENTINEL or item_key != previous_key:
            result.append(item)
            previous_key = item_key
    return result


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()


def _identity(x: Any) -> Any:
    return x
