"""The join algorithms of Section 3.3.2.

Five methods from the paper's study plus the precomputed pointer join of
Section 2.1:

* :func:`nested_loops_join` — the O(N^2) strawman of Graph 10;
* :func:`hash_join` — nested loops with a Chained Bucket Hash built on the
  inner relation (the build cost is *always* charged: "we always include
  the cost of building a hash table, because we feel that a hash table
  index is less likely to exist than a T Tree index");
* :func:`tree_join` — nested loops probing an *existing* T-Tree on the
  inner relation (building one never pays: "a Tree Join will always cost
  more than a Hash Join" if the build is included);
* :func:`sort_merge_join` — builds array indexes on both inputs, sorts
  them with the footnote-6 quicksort, merges;
* :func:`tree_merge_join` — merge join over two *existing* T-Tree
  indexes;
* :func:`precomputed_join` — follows materialised foreign-key tuple
  pointers ("it would beat each of the join methods in every case,
  because the joining tuples have already been paired").

All functions are generic over item sequences and key extractors and
return a list of ``(outer_item, inner_item)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import UnsupportedOperationError
from repro.indexes.array_index import ArrayIndex
from repro.indexes.base import Index, OrderedIndex, compare_keys
from repro.indexes.chained_hash import ChainedBucketHashIndex
from repro.instrument import (
    OpCounters,
    count_compare,
    count_move,
    count_traverse,
    counters_scope,
)
from repro.obs import runtime as obs_runtime
from repro.query.sort import quicksort

Pair = Tuple[Any, Any]
KeyOf = Callable[[Any], Any]


@dataclass
class JoinStatistics:
    """Result size plus the operation counts of one join execution."""

    method: str
    result_size: int
    counters: OpCounters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinStatistics({self.method}, n={self.result_size}, "
            f"{self.counters!r})"
        )


def measured(
    method: str, func: Callable[[], List[Pair]]
) -> Tuple[List[Pair], JoinStatistics]:
    """Run a join thunk inside a fresh counter scope and report stats.

    The scope rolls up into its parent: a benchmark wrapping several
    ``measured`` calls in one enclosing ``counters_scope`` still sees
    every operation (previously the inner scope swallowed them and the
    enclosing totals under-counted).
    """
    with counters_scope(rollup=True) as counters:
        result = func()
    return result, JoinStatistics(method, len(result), counters.snapshot())


# --------------------------------------------------------------------- #
# nested loops
# --------------------------------------------------------------------- #

def nested_loops_join(
    outer: Sequence[Any],
    inner: Sequence[Any],
    outer_key: KeyOf,
    inner_key: KeyOf,
) -> List[Pair]:
    """The pure O(N^2) join — "unless one plans to generate full cross
    products on a regular basis, nested loops join should simply never be
    considered as a practical join method for a main memory DBMS"."""
    result: List[Pair] = []
    for outer_item in outer:
        key = outer_key(outer_item)
        for inner_item in inner:
            count_compare()
            if inner_key(inner_item) == key:
                count_move(1)
                result.append((outer_item, inner_item))
    return result


# --------------------------------------------------------------------- #
# index joins
# --------------------------------------------------------------------- #

def hash_join(
    outer: Sequence[Any],
    inner: Sequence[Any],
    outer_key: KeyOf,
    inner_key: KeyOf,
    table_size: Optional[int] = None,
) -> List[Pair]:
    """Nested loops with a Chained Bucket Hash built on the inner input.

    The hash-table build is part of the measured cost.  "A hash table has
    a fixed cost, independent of the index size, to look up a value" —
    the fixed lookup cost ``k`` of the paper's analysis.
    """
    size = table_size if table_size is not None else max(4, len(inner))
    with obs_runtime.span("hash_join.build", "join_phase"):
        table = ChainedBucketHashIndex(
            key_of=inner_key, unique=False, table_size=size
        )
        for inner_item in inner:
            table.insert(inner_item)
    result: List[Pair] = []
    with obs_runtime.span("hash_join.probe", "join_phase"):
        for outer_item in outer:
            for inner_item in table.search_all(outer_key(outer_item)):
                count_move(1)
                result.append((outer_item, inner_item))
    return result


def tree_join(
    outer: Sequence[Any],
    outer_key: KeyOf,
    inner_index: OrderedIndex,
) -> List[Pair]:
    """Nested loops probing an existing ordered index on the inner input.

    Cost shape per the paper: roughly ``|R1| + |R1| * log2(|R2|)``
    comparisons.  Unsuccessful probes stop at the binary-tree search;
    successful ones additionally "scan in both directions" to collect
    duplicates — which is why Test 6 shows this method most sensitive to
    semijoin selectivity.
    """
    if not inner_index.ordered:
        raise UnsupportedOperationError("tree_join needs an ordered index")
    result: List[Pair] = []
    for outer_item in outer:
        for inner_item in inner_index.search_all(outer_key(outer_item)):
            count_move(1)
            result.append((outer_item, inner_item))
    return result


# --------------------------------------------------------------------- #
# merge joins
# --------------------------------------------------------------------- #

def merge_join_sorted(
    outer_sorted: Sequence[Any],
    inner_sorted: Sequence[Any],
    outer_key: KeyOf,
    inner_key: KeyOf,
    inner_rescan: Optional[Callable[[], None]] = None,
) -> List[Pair]:
    """Merge join over two key-sorted sequences [BlE77].

    Equal-key runs produce their full cross product.  Without duplicates
    the comparison count is about ``|R1| + 2 * |R2|``, the figure the
    paper quotes for the Tree Merge of Test 1.

    ``inner_rescan`` is invoked once per inner item revisited while a
    duplicate run's cross product is emitted: re-walking a T-Tree run
    chases node pointers while re-walking an array run is a contiguous
    read, which is exactly why "the array index can be scanned in about
    2/3 the time it takes to scan a T Tree" and why Sort Merge wins the
    high-duplicate joins of Graphs 7 and 8.  Recording each result tuple
    costs one move in every join method.
    """
    result: List[Pair] = []
    i, j = 0, 0
    n_outer, n_inner = len(outer_sorted), len(inner_sorted)
    while i < n_outer and j < n_inner:
        outer_item = outer_sorted[i]
        ok = outer_key(outer_item)
        cmp = compare_keys(ok, inner_key(inner_sorted[j]))
        if cmp < 0:
            i += 1
            continue
        if cmp > 0:
            j += 1
            continue
        # Equal run: find its extent in the inner input, then pair every
        # equal outer item with the whole run.
        j_end = j
        while j_end < n_inner:
            count_compare()
            if inner_key(inner_sorted[j_end]) != ok:
                break
            j_end += 1
        while i < n_outer:
            count_compare()
            if outer_key(outer_sorted[i]) != ok:
                break
            for jj in range(j, j_end):
                if inner_rescan is not None:
                    inner_rescan()
                count_move(1)
                result.append((outer_sorted[i], inner_sorted[jj]))
            i += 1
        j = j_end
    return result


def sort_merge_join(
    outer: Sequence[Any],
    inner: Sequence[Any],
    outer_key: KeyOf,
    inner_key: KeyOf,
) -> List[Pair]:
    """Sort-merge join: build array indexes on both inputs, quicksort
    them (insertion-sort cutoff 10), then merge.

    The build-and-sort cost ``|R1| log |R1| + |R2| log |R2|`` is charged —
    that is what makes Sort Merge the worst method of Test 1 yet the best
    once huge equal-key runs must be scanned (Graphs 7 and 8): "the array
    index can be scanned faster than the T Tree index because the array
    index holds a list of contiguous elements whereas the T Tree holds
    nodes of contiguous elements joined by pointers".
    """
    with obs_runtime.span("sort_merge.build_sort", "join_phase"):
        outer_array = ArrayIndex.build_unsorted(
            list(outer), outer_key, unique=False
        )
        inner_array = ArrayIndex.build_unsorted(
            list(inner), inner_key, unique=False
        )
        outer_array.sort_in_place(lambda items: quicksort(items, outer_key))
        inner_array.sort_in_place(lambda items: quicksort(items, inner_key))
    with obs_runtime.span("sort_merge.merge", "join_phase"):
        return merge_join_sorted(
            outer_array.rows(), inner_array.rows(), outer_key, inner_key
        )


def tree_merge_join(
    outer_index: OrderedIndex,
    inner_index: OrderedIndex,
) -> List[Pair]:
    """Merge join scanning two existing ordered indexes in key order.

    "It turned out never to be advantageous to build the T Tree indices
    for this join method" — so, as in the paper, the caller supplies
    already-existing indexes and only the merge is measured.  Scanning a
    T-Tree costs pointer traversals between nodes, the ~1.5x penalty
    versus an array scan that Test 4 exposes.
    """
    if not (outer_index.ordered and inner_index.ordered):
        raise UnsupportedOperationError("tree_merge_join needs ordered indexes")
    outer_items = list(outer_index.scan())
    inner_items = list(inner_index.scan())
    return merge_join_sorted(
        outer_items,
        inner_items,
        outer_index.key_of,
        inner_index.key_of,
        inner_rescan=count_traverse,
    )


# --------------------------------------------------------------------- #
# precomputed join (Section 2.1)
# --------------------------------------------------------------------- #

def precomputed_join(
    outer: Iterable[Any],
    pointer_of: Callable[[Any], Any],
) -> List[Pair]:
    """Follow materialised foreign-key tuple pointers.

    ``pointer_of`` maps an outer item to the stored pointer value: a
    single tuple pointer for a one-to-one relationship, a list of
    pointers for one-to-many, or None when the foreign key is null.
    "Intuitively, it would beat each of the join methods in every case,
    because the joining tuples have already been paired."
    """
    result: List[Pair] = []
    for outer_item in outer:
        target = pointer_of(outer_item)
        if target is None:
            continue
        if isinstance(target, list):
            for pointer in target:
                count_move(1)
                result.append((outer_item, pointer))
        else:
            count_move(1)
            result.append((outer_item, target))
    return result


# --------------------------------------------------------------------- #
# non-equijoins (Section 3.3.5)
# --------------------------------------------------------------------- #

def theta_join(
    outer: Sequence[Any],
    inner: Sequence[Any],
    outer_key: KeyOf,
    inner_key: KeyOf,
    matches: Callable[[Any, Any], bool],
) -> List[Pair]:
    """Generic theta join by nested loops — the fallback for arbitrary
    join conditions (including the "not equals" the paper notes cannot
    use ordering)."""
    result: List[Pair] = []
    for outer_item in outer:
        ok = outer_key(outer_item)
        for inner_item in inner:
            count_compare()
            if matches(ok, inner_key(inner_item)):
                count_move(1)
                result.append((outer_item, inner_item))
    return result


#: Inequality operators an ordered index can serve, mapped to the inner
#: key range they imply for an outer key k: (low, high, incl_low,
#: incl_high) with None meaning unbounded.
_INEQUALITY_RANGES = {
    "<": lambda k: (k, None, False, True),    # outer < inner
    "<=": lambda k: (k, None, True, True),
    ">": lambda k: (None, k, True, False),    # outer > inner
    ">=": lambda k: (None, k, True, True),
}


def tree_inequality_join(
    outer: Sequence[Any],
    outer_key: KeyOf,
    inner_index: OrderedIndex,
    op: str,
) -> List[Pair]:
    """Inequality join through an existing ordered index.

    "Non-equijoins other than 'not equals' can make use of ordering of
    the data, so the Tree Join should be used for such (<, <=, >, >=)
    joins" (Section 3.3.5).  For each outer tuple one tree descent finds
    the boundary, then the qualifying run is scanned in order — no
    per-pair comparisons beyond the boundary checks.
    """
    if not inner_index.ordered:
        raise UnsupportedOperationError(
            "tree_inequality_join needs an ordered index"
        )
    try:
        key_range = _INEQUALITY_RANGES[op]
    except KeyError:
        raise UnsupportedOperationError(
            f"operator {op!r} cannot use an ordered index; "
            "use theta_join for '!='"
        ) from None
    result: List[Pair] = []
    for outer_item in outer:
        low, high, incl_low, incl_high = key_range(outer_key(outer_item))
        for inner_item in inner_index.range_scan(
            low, high, incl_low, incl_high
        ):
            count_move(1)
            result.append((outer_item, inner_item))
    return result


def band_join(
    outer: Sequence[Any],
    outer_key: KeyOf,
    inner_index: OrderedIndex,
    below: Any,
    above: Any,
) -> List[Pair]:
    """Band join: pairs where ``outer.key - below <= inner.key <=
    outer.key + above`` — the natural generalisation of the ordered
    inequality join, served by one range scan per outer tuple."""
    if not inner_index.ordered:
        raise UnsupportedOperationError("band_join needs an ordered index")
    result: List[Pair] = []
    for outer_item in outer:
        key = outer_key(outer_item)
        for inner_item in inner_index.range_scan(key - below, key + above):
            count_move(1)
            result.append((outer_item, inner_item))
    return result
