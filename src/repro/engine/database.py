"""``MainMemoryDatabase`` — the public face of the MM-DBMS.

Ties together the storage engine, index structures, query processor,
optimizer, partition-level locking, and the recovery components of
Figure 2.  A minimal session::

    db = MainMemoryDatabase()
    db.create_relation(
        "Department",
        [Field("Name", FieldType.STR), Field("Id", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "Employee",
        [
            Field("Name", FieldType.STR),
            Field("Id", FieldType.INT),
            Field("Age", FieldType.INT),
            Field("Dept_Id", FieldType.INT,
                  references=ForeignKey("Department", "Id")),
        ],
        primary_key="Id",
    )
    db.insert("Department", ["Toy", 459])
    db.insert("Employee", ["Dave", 23, 24, 459])   # Dept_Id becomes a pointer
    result = db.select("Employee", gt("Age", 21))
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CatalogError,
    QueryError,
    SchemaError,
    TransactionError,
)
from repro.query.executor import Executor
from repro.query.optimizer import Optimizer
from repro.query.predicates import Comparison, Conjunction, Disjunction, Op
from repro.query.plan import (
    REF_COLUMN,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import Predicate
from repro.query.project import project_hash, project_sort_scan
from repro.recovery.restart import RecoveryManager, RestartStats
from repro.storage.catalog import Catalog
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.relation import Relation
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.temporary import TemporaryList
from repro.storage.tuples import TupleRef
from repro.txn.locks import LockMode
from repro.txn.transaction import Transaction, TransactionManager


class _NeverMatches(Predicate):
    """A predicate that matches nothing (an FK equality on an absent
    referenced key — the join partner does not exist)."""

    def __init__(self, field_name: str) -> None:
        self.field_name = field_name

    def matches(self, read_field) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.field_name} matches nothing)"


class _FKValueComparison(Predicate):
    """Ordered comparison on a foreign-key column's *referenced value*.

    Follows the stored tuple pointer to the referenced relation's key
    field, then applies the original comparison to that value.  NULL
    pointers never match (SQL comparison semantics).
    """

    def __init__(self, comparison: Comparison, target, key_field: str) -> None:
        self.comparison = comparison
        self.target = target
        self.key_field = key_field

    def matches(self, read_field) -> bool:
        pointer = read_field(self.comparison.field)
        if pointer is None:
            return False
        value = self.target.read_field(pointer, self.key_field)
        return self.comparison.matches(
            lambda __: value
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"(follow {self.comparison!r})"


class MainMemoryDatabase:
    """A memory-resident relational database (the paper's MM-DBMS).

    Parameters
    ----------
    durable:
        When true, every update writes a log record to the stable log
        buffer and the Figure 2 recovery machinery (simulated disk, log
        device, change-accumulation log) is active.  When false the
        database is volatile — the configuration the paper's query
        processing experiments ran in.
    cache:
        Optional :class:`~repro.cache.CacheConfig` enabling the query
        reuse subsystem (plan cache + versioned result cache).  The
        default, ``None``, leaves caching off: plans are rebuilt and
        results recomputed on every call, exactly as before.
    """

    def __init__(self, durable: bool = False, cache=None) -> None:
        self.catalog = Catalog()
        self.optimizer = Optimizer(self.catalog)
        self.executor = Executor(self.catalog)
        self.transactions = TransactionManager()
        self.durable = durable
        self.recovery: Optional[RecoveryManager] = (
            RecoveryManager(self.catalog) if durable else None
        )
        self.plan_cache = None
        self.result_cache = None
        self.observability = None
        self.fault_injector = None
        self.execution_config = None
        self.replication = None
        # CI hook: REPRO_EXEC_ENGINE/_WORKERS/_POOL select a default
        # execution config for every database constructed in the
        # process (the 2-worker pytest lane runs the whole suite on the
        # parallel path this way).  Explicit configure_execution calls
        # still override per instance.
        env_engine = os.environ.get("REPRO_EXEC_ENGINE")
        if env_engine:
            self.configure_execution(
                engine=env_engine,
                workers=int(os.environ.get("REPRO_EXEC_WORKERS") or 1),
                pool=os.environ.get("REPRO_EXEC_POOL") or None,
            )
        # Optimizer hook: REPRO_JOIN_ORDERING selects the multi-join
        # ordering mode for every database in the process (CI lanes run
        # the suite under "cost" this way).  configure_optimizer still
        # overrides per instance.
        env_ordering = os.environ.get("REPRO_JOIN_ORDERING")
        if env_ordering:
            self.configure_optimizer(join_ordering=env_ordering)
        # Chaos hook: REPRO_FAULTS carries a fault-injection spec (see
        # repro.fault.config) so CI chaos lanes can exercise the
        # degraded paths without code changes.  Explicit
        # configure_faults calls still override.
        env_faults = os.environ.get("REPRO_FAULTS")
        if env_faults:
            self.configure_faults(spec=env_faults)
        # Observability hook: REPRO_OBS=1 enables the default tracing +
        # metrics + flight-recorder stack for every database in the
        # process (the obs-enabled CI smoke lane uses this).  Explicit
        # configure_observability calls still override.
        env_obs = os.environ.get("REPRO_OBS")
        if env_obs and env_obs not in ("0", "false", "off"):
            self.configure_observability()
        if cache is not None:
            self.configure_cache(cache)
        # Replication hook: REPRO_REPLICATION selects a channel mode
        # ("inline" / "process", optionally ":shm" for the transport)
        # for every *durable* database in the process — the failover CI
        # lane runs the suite replicated this way.  Explicit
        # configure_replication calls still override.
        env_repl = os.environ.get("REPRO_REPLICATION")
        if env_repl and durable and env_repl not in ("0", "false", "off"):
            mode, __, transport = env_repl.partition(":")
            self.configure_replication(
                channel=mode, transport=transport or None
            )
        # The transaction id used for log records when no transaction is
        # active (each autocommit op commits immediately).
        self._autocommit_lock = threading.Lock()
        self._txn_local = threading.local()

    # ------------------------------------------------------------------ #
    # query reuse subsystem
    # ------------------------------------------------------------------ #

    def configure_cache(self, config=None) -> None:
        """Install (or reconfigure) the reuse caches.

        ``config`` is a :class:`~repro.cache.CacheConfig`; ``None``
        installs the defaults.  Passing a config with both layers
        disabled removes caching entirely.
        """
        from repro.cache import CacheConfig, PlanCache, ResultCache

        if config is None:
            config = CacheConfig()
        self.plan_cache = (
            PlanCache(config.ast_capacity, config.plan_capacity)
            if config.enable_plans
            else None
        )
        self.result_cache = (
            ResultCache(self.catalog, config.result_capacity)
            if config.enable_results
            else None
        )
        self.executor.result_cache = self.result_cache

    # ------------------------------------------------------------------ #
    # optimizer
    # ------------------------------------------------------------------ #

    def configure_optimizer(self, *, join_ordering: str = None) -> None:
        """Select how multi-join chains are ordered.

        ``join_ordering="cost"`` re-orders 3+-relation equijoin chains
        by forecast Section-3.1 op counts (see
        :meth:`~repro.query.optimizer.Optimizer.plan_join_chain`);
        ``"written"`` — the default, restored by passing ``None`` —
        folds the FROM clause exactly as written.  Same opt-in contract
        as caching and batch execution: results are identical in either
        mode, only the plan changes.
        """
        from repro.errors import ConfigError
        from repro.query.optimizer import JOIN_ORDERINGS

        if join_ordering is None:
            join_ordering = "written"
        if join_ordering not in JOIN_ORDERINGS:
            raise ConfigError(
                f"unknown join_ordering {join_ordering!r}; choose from "
                f"{JOIN_ORDERINGS}"
            )
        self.optimizer.join_ordering = join_ordering

    # ------------------------------------------------------------------ #
    # execution engine
    # ------------------------------------------------------------------ #

    def configure_execution(
        self,
        config=None,
        *,
        engine: str = None,
        batch_size: int = None,
        workers: int = None,
        morsel_size: int = None,
        pool: str = None,
        retry_attempts: int = None,
        retry_timeout: float = None,
        transport: str = None,
        shm_threshold_rows: int = None,
        retry_backoff=None,
    ):
        """Select the execution engine (tuple-at-a-time vs. batch).

        ``config`` is an
        :class:`~repro.query.vectorized.ExecutionConfig`; alternatively
        pass its fields as keywords.  Passing only ``batch_size``
        implies the batch engine.  Called with nothing, it restores the
        default tuple-at-a-time engine.  ``workers=N`` with the batch
        engine adds morsel-driven parallelism for ``N > 1``;
        ``workers=1`` (the default) takes the scalar batch path exactly
        — no worker pool is ever created.  Every plan evaluated through
        this database — ``select``/``join``/``project``, ``sql()``,
        prepared statements — runs on the selected engine; attached
        result caches and observability carry over.  Invalid settings
        raise :class:`repro.errors.ConfigError` here, before any plan
        runs.  Returns the new executor.

        ``transport="shm"`` moves morsel payloads through packed
        shared-memory segments instead of the pool pipe (see DESIGN.md
        section 3.13); the default follows ``REPRO_TRANSPORT``, falling
        back to ``"pickle"``.  ``shm_threshold_rows`` tunes the minimum
        payload size worth a segment.
        """
        from repro.errors import ConfigError
        from repro.query.vectorized import BatchExecutor, ExecutionConfig

        keyword_fields = {
            "engine": engine,
            "batch_size": batch_size,
            "workers": workers,
            "morsel_size": morsel_size,
            "pool": pool,
            "retry_attempts": retry_attempts,
            "retry_timeout": retry_timeout,
            "transport": transport,
            "shm_threshold_rows": shm_threshold_rows,
            "retry_backoff": retry_backoff,
        }
        given = {
            name: value
            for name, value in keyword_fields.items()
            if value is not None
        }
        if config is None:
            if engine is None:
                wants_batch = bool(given)
                given["engine"] = "batch" if wants_batch else "tuple"
            config = ExecutionConfig(**given)
        elif given:
            raise ConfigError(
                "pass either an ExecutionConfig or keyword fields, not both"
            )
        previous = self.executor
        if config.engine == "batch":
            if config.workers > 1:
                from repro.query.parallel import ParallelBatchExecutor
                from repro.query.parallel import runtime as par_runtime

                self.executor = ParallelBatchExecutor(
                    self.catalog,
                    self.result_cache,
                    config.batch_size,
                    workers=config.workers,
                    morsel_size=config.morsel_size,
                    pool=config.pool,
                    retry_attempts=config.retry_attempts,
                    retry_timeout=config.retry_timeout,
                    transport=config.transport,
                    shm_threshold_rows=config.shm_threshold_rows,
                    retry_backoff=config.retry_backoff,
                )
                par_runtime.activate_scheduler(self.executor.scheduler)
            else:
                self.executor = BatchExecutor(
                    self.catalog, self.result_cache, config.batch_size
                )
        else:
            self.executor = Executor(self.catalog, self.result_cache)
        self._retire_executor(previous)
        self.execution_config = config
        self._sync_observability_context()
        return self.executor

    def _sync_observability_context(self) -> None:
        """Keep the flight recorder's engine/worker stamp current."""
        if self.observability is None:
            return
        config = self.execution_config
        self.observability.context["engine"] = (
            config.engine if config is not None else "tuple"
        )
        self.observability.context["workers"] = (
            config.workers if config is not None else 1
        )

    def _retire_executor(self, executor) -> None:
        """Release a replaced executor's pool and scheduler slot."""
        if executor is None or executor is self.executor:
            return
        scheduler = getattr(executor, "scheduler", None)
        if scheduler is not None:
            from repro.query.parallel import runtime as par_runtime

            par_runtime.deactivate_scheduler(scheduler)
        close = getattr(executor, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def configure_observability(self, config=None):
        """Install (or reconfigure) query tracing and metrics.

        ``config`` is an :class:`~repro.obs.ObservabilityConfig`; ``None``
        enables the defaults (span tracing + metrics + slow-query log).
        The instance is activated *process-wide* — the engine's
        instrumentation hooks consult a module-level slot, exactly like
        the operation-counter stack — so the most recently configured
        database wins.  Passing a config with both tracing and metrics
        disabled deactivates observability entirely and restores the
        zero-overhead hooks.

        Returns the installed :class:`~repro.obs.Observability` (or None
        when disabling).
        """
        from repro.obs import Observability, ObservabilityConfig
        from repro.obs import runtime as obs_runtime

        if config is None:
            config = ObservabilityConfig()
        if not config.enabled:
            if self.observability is not None and (
                obs_runtime.active() is self.observability
            ):
                obs_runtime.deactivate()
            self.observability = None
            return None
        self.observability = Observability(config)
        self._sync_observability_context()
        obs_runtime.activate(self.observability)
        return self.observability

    def flight_records(self):
        """The flight recorder's retained per-statement records, oldest
        first ([] when the recorder — or observability — is off)."""
        obs = self.observability
        if obs is None or obs.recorder is None:
            return []
        return obs.recorder.recent()

    def scheduler_stats(self) -> Optional[Dict[str, Any]]:
        """The parallel scheduler's run counters plus per-worker
        telemetry, or None when the scalar engine is configured."""
        scheduler = getattr(self.executor, "scheduler", None)
        if scheduler is None:
            return None
        from repro.query.parallel import shm, tasks

        stats: Dict[str, Any] = dict(scheduler.stats)
        stats["workers"] = {
            pid: dict(per) for pid, per in scheduler.worker_stats.items()
        }
        stats["transport"] = scheduler.transport
        arena = shm.arena()
        stats["shm"] = {
            "segments_active": arena.active_segments(),
            "segments_created": arena.created_segments,
            "bytes_created": arena.created_bytes,
        }
        stats["blob_cache"] = tasks.blob_cache_stats()
        return stats

    def observability_report(self, top: int = 10) -> str:
        """The plain-text hotspot report (see :mod:`repro.obs.report`)."""
        if self.observability is None:
            return "Observability is not configured.\n"
        from repro.obs.report import render_report

        return render_report(
            self.observability,
            self.scheduler_stats(),
            top=top,
            quarantine=self.quarantine_report(),
            replication=self.replication_state(),
        )

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #

    def configure_faults(
        self,
        config=None,
        *,
        seed: int = None,
        policies: Sequence[Any] = None,
        spec: str = None,
        backoff=None,
    ):
        """Install (or remove) the deterministic fault injector.

        ``config`` is a :class:`~repro.fault.FaultConfig`; alternatively
        pass ``seed`` plus a ``policies`` sequence of
        :class:`~repro.fault.FaultPolicy`, or a ``spec`` string in the
        ``REPRO_FAULTS`` syntax.  The injector is activated
        *process-wide* — fault hooks consult a module-level slot, the
        same contract as the observability hooks, so when disabled every
        hook is a single global load.  Called with nothing (or with a
        config carrying no policies), it deactivates fault injection
        entirely and restores the zero-overhead no-op hooks.

        ``backoff`` (a :class:`~repro.fault.BackoffPolicy`, or the
        ``backoff:`` clause of a spec) installs the shared retry
        schedule the recovery manager sleeps between transient-read
        retries; disabling faults resets it to immediate retries.

        Returns the installed
        :class:`~repro.fault.FaultInjector` (or None when disabling).
        """
        from repro.errors import ConfigError
        from repro.fault import FaultConfig, FaultInjector, parse_fault_spec
        from repro.fault import NO_BACKOFF
        from repro.fault import runtime as fault_runtime

        given = [
            value
            for value in (seed, policies, spec, backoff)
            if value is not None
        ]
        if config is not None and given:
            raise ConfigError(
                "pass either a FaultConfig or keyword fields, not both"
            )
        if config is None:
            if spec is not None:
                if seed is not None or policies is not None:
                    raise ConfigError(
                        "pass either spec or seed/policies, not both"
                    )
                config = parse_fault_spec(spec)
            else:
                config = FaultConfig(
                    seed=seed if seed is not None else 0,
                    policies=tuple(policies) if policies else (),
                    backoff=backoff,
                )
        # The shared retry schedule applies even when no fault policy
        # does (a backoff-only configuration is legitimate tuning).
        if self.recovery is not None:
            self.recovery.backoff = (
                config.backoff if config.backoff is not None else NO_BACKOFF
            )
        if not config.enabled:
            if self.fault_injector is not None and (
                fault_runtime.active() is self.fault_injector
            ):
                fault_runtime.deactivate()
            self.fault_injector = None
            return None
        self.fault_injector = FaultInjector(config.seed, config.policies)
        fault_runtime.activate(self.fault_injector)
        return self.fault_injector

    # ------------------------------------------------------------------ #
    # replication (durable mode)
    # ------------------------------------------------------------------ #

    def configure_replication(
        self,
        config=None,
        *,
        channel: str = None,
        transport: str = None,
        max_lag_records: int = None,
        batch_records: int = None,
        retry_attempts: int = None,
        backoff=None,
        heartbeat_timeout: float = None,
    ):
        """Establish a log-shipped warm replica (durable mode only).

        ``config`` is a
        :class:`~repro.replication.ReplicationConfig`; alternatively
        pass its fields as keywords.  The replica bootstraps from the
        disk copy plus the accumulation log's unpropagated suffix, then
        stays current: every record the log device absorbs also ships,
        in checksummed batches, with retry/backoff on every hop.  On
        primary failure, :meth:`demote` (or a heartbeat timeout, or
        observed worker kills via :meth:`check_failover`) promotes the
        replica.  A partition quarantined by ``recover(partial=True)``
        heals online from the replica via :meth:`heal_partitions`.

        Reconfiguring replaces the existing replica.  Returns the
        :class:`~repro.replication.FailoverCoordinator`.
        """
        from repro.errors import ConfigError
        from repro.replication import FailoverCoordinator, ReplicationConfig

        self._require_durable()
        keyword_fields = {
            "channel": channel,
            "transport": transport,
            "max_lag_records": max_lag_records,
            "batch_records": batch_records,
            "retry_attempts": retry_attempts,
            "backoff": backoff,
            "heartbeat_timeout": heartbeat_timeout,
        }
        given = {
            name: value
            for name, value in keyword_fields.items()
            if value is not None
        }
        if config is None:
            config = ReplicationConfig(**given)
        elif given:
            raise ConfigError(
                "pass either a ReplicationConfig or keyword fields, not both"
            )
        if self.replication is not None:
            self.replication.close()
        self.replication = FailoverCoordinator(self, config).establish()
        return self.replication

    def stop_replication(self) -> None:
        """Detach and stop the warm replica (no-op when none exists)."""
        if self.replication is not None:
            self.replication.close()
            self.replication = None

    def _require_replication(self):
        from repro.errors import ReplicationError

        if self.replication is None:
            raise ReplicationError(
                "replication is not configured; call "
                "configure_replication() first"
            )
        return self.replication

    def demote(self, reason: str = "demoted"):
        """Explicit failover: this primary steps down, the replica's
        images become the database.  Returns
        :class:`~repro.replication.PromotionStats`."""
        return self._require_replication().promote(reason=reason)

    def heal_partitions(self):
        """Online partition repair: every quarantined partition is
        re-fetched from the replica and swapped in.  Returns
        :class:`~repro.replication.HealStats`."""
        return self._require_replication().heal_quarantined()

    def replication_heartbeat(self) -> None:
        """Stamp the primary's liveness (see ``heartbeat_timeout``)."""
        self._require_replication().heartbeat()

    def check_failover(self) -> bool:
        """Run the failure detectors; True when this call promoted.

        Checks the heartbeat window first, then the fault injector's
        record of killed workers (the chaos lane's kill-primary signal).
        """
        coordinator = self._require_replication()
        return coordinator.check() or coordinator.maybe_promote_on_faults()

    def replication_state(self) -> Optional[Dict[str, Any]]:
        """Shipper/replica/coordinator state, or None when off."""
        if self.replication is None:
            return None
        return self.replication.replication_state()

    def quarantine_report(self) -> Dict[str, List[Tuple[int, str]]]:
        """Quarantined partitions per relation from the last partial
        restart ({} when none, or when never restarted)."""
        if self.recovery is None or self.recovery.last_restart_stats is None:
            return {}
        return self.recovery.last_restart_stats.quarantine_report()

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction statistics for every installed cache layer."""
        stats: Dict[str, Any] = {}
        if self.plan_cache is not None:
            stats.update(self.plan_cache.stats())
        if self.result_cache is not None:
            stats["result"] = self.result_cache.stats()
        return stats

    # ------------------------------------------------------------------ #
    # schema operations
    # ------------------------------------------------------------------ #

    def create_relation(
        self,
        name: str,
        fields: Sequence[Field],
        primary_key: Optional[str] = None,
        primary_index_kind: str = "ttree",
        partition_config: PartitionConfig = None,
    ) -> Relation:
        """Create a relation with its mandatory primary index.

        ``primary_key`` names the uniquely indexed field (defaults to the
        first field).  The primary index is a unique T-Tree unless
        ``primary_index_kind`` overrides it — T-Trees are the design's
        general-purpose index (Section 2.2).
        """
        schema = Schema(fields)
        relation = self.catalog.create_relation(name, schema, partition_config)
        key_field = primary_key if primary_key is not None else fields[0].name
        schema.position(key_field)  # validates
        relation.create_index(
            f"{name}_pk", key_field, kind=primary_index_kind, unique=True
        )
        if self.durable:
            relation.change_listener = self._make_change_listener(relation)
        relation.fk_resolver = self._resolve_fk_pointer
        return relation

    def _resolve_fk_pointer(self, references, pointer: TupleRef) -> Any:
        """Follow a foreign-key pointer to the referenced key value."""
        target = self.catalog.relation(references.relation)
        return target.read_field(pointer, references.field)

    def create_index(
        self,
        relation_name: str,
        index_name: str,
        field_name: str,
        kind: str = "ttree",
        unique: bool = False,
        **options: Any,
    ):
        """Add a secondary index (see :data:`repro.indexes.INDEX_KINDS`)."""
        relation = self.catalog.relation(relation_name)
        return relation.create_index(
            index_name, field_name, kind, unique, **options
        )

    def relation(self, name: str) -> Relation:
        """Catalog lookup."""
        return self.catalog.relation(name)

    # ------------------------------------------------------------------ #
    # logging plumbing
    # ------------------------------------------------------------------ #

    def _make_change_listener(self, relation: Relation):
        def listener(event: Dict[str, Any]) -> None:
            txn_id = getattr(self._txn_local, "txn_id", None)
            manager = self.recovery
            partition_id = event["partition"]
            if not manager.disk.has_partition(relation.name, partition_id):
                # First touch of a brand-new partition: write its empty
                # base image so log replay has a starting point.
                base = Partition(partition_id, relation.partition_config)
                manager.disk.write_partition(
                    relation.name, partition_id, base.to_bytes()
                )
            payload = {
                key: value
                for key, value in event.items()
                if key not in ("kind", "relation", "partition")
            }
            effective_txn = txn_id if txn_id is not None else 0
            manager.stable_log.append(
                effective_txn,
                relation.name,
                partition_id,
                event["kind"],
                payload,
            )
            if txn_id is None:
                # Autocommit: the single record commits immediately.
                manager.stable_log.commit(effective_txn)

        return listener

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    def begin(self) -> Transaction:
        """Start a transaction (strict 2PL, deferred updates)."""
        txn = self.transactions.begin()
        if self.durable:
            txn.on_commit = self._seal_txn_log
            txn.on_abort = self._drop_txn_log
        original_commit = txn.commit

        def commit_with_context() -> None:
            self._txn_local.txn_id = txn.id
            try:
                original_commit()
            finally:
                self._txn_local.txn_id = None

        txn.commit = commit_with_context
        return txn

    def _seal_txn_log(self, txn: Transaction) -> None:
        self.recovery.stable_log.commit(txn.id)

    def _drop_txn_log(self, txn: Transaction) -> None:
        self.recovery.stable_log.abort(txn.id)

    # ------------------------------------------------------------------ #
    # data modification
    # ------------------------------------------------------------------ #

    def _resolve_row(
        self, relation: Relation, values: Union[Sequence[Any], Dict[str, Any]]
    ) -> List[Any]:
        """Validate a logical row and materialise its foreign keys.

        Each declared foreign-key value is looked up in the referenced
        relation's index and replaced by the target's tuple pointer —
        the Section 2.1 substitution that enables precomputed joins.
        ``None`` foreign keys stay ``None`` (a null pointer).
        """
        schema = relation.schema
        if isinstance(values, dict):
            try:
                row = [values[f.name] for f in schema.fields]
            except KeyError as exc:
                raise SchemaError(f"missing field {exc.args[0]!r}") from None
        else:
            row = list(values)
        schema.validate_row(row)
        for position, field in enumerate(schema.fields):
            fk = field.references
            if fk is None or row[position] is None:
                continue
            target = self.catalog.relation(fk.relation)
            index = target.index_on(fk.field)
            if index is None:
                raise SchemaError(
                    f"foreign key {relation.name}.{field.name} needs an "
                    f"index on {fk.relation}.{fk.field}"
                )
            ref = index.search(row[position])
            if ref is None:
                raise QueryError(
                    f"foreign key violation: {fk.relation}.{fk.field} has "
                    f"no value {row[position]!r}"
                )
            row[position] = target.resolve(ref)
        return row

    def insert(
        self,
        relation_name: str,
        values: Union[Sequence[Any], Dict[str, Any]],
        txn: Optional[Transaction] = None,
    ) -> Optional[TupleRef]:
        """Insert one tuple.

        Without ``txn`` the insert applies (and, in durable mode, logs
        and commits) immediately and returns the new tuple pointer.
        With ``txn`` it is deferred to commit and returns None; the
        relation-level resource is locked exclusively first (the new
        tuple's partition is unknown until the insert applies).
        """
        relation = self.catalog.relation(relation_name)
        row = self._resolve_row(relation, values)
        if txn is None:
            return relation.insert(row)
        txn.lock_exclusive(relation_name, None)

        def apply_insert() -> Any:
            ref = relation.insert(row)
            return lambda: relation.delete(ref)

        txn.add_intention(apply_insert)
        return None

    def delete(
        self,
        relation_name: str,
        ref: TupleRef,
        txn: Optional[Transaction] = None,
    ) -> None:
        """Delete the tuple behind ``ref`` (deferred when in a txn)."""
        relation = self.catalog.relation(relation_name)
        if txn is None:
            relation.delete(ref)
            return
        canonical = relation.resolve(ref)
        txn.lock_exclusive(relation_name, canonical.partition_id)

        def apply_delete() -> Any:
            old_row = relation.fetch(canonical)
            relation.delete(canonical)
            return lambda: relation.insert(old_row)

        txn.add_intention(apply_delete)

    def update(
        self,
        relation_name: str,
        ref: TupleRef,
        field_name: str,
        value: Any,
        txn: Optional[Transaction] = None,
    ) -> None:
        """Update one field (deferred when in a txn).

        Updating a foreign-key field re-resolves the pointer.
        """
        relation = self.catalog.relation(relation_name)
        field = relation.schema.field(field_name)
        physical_value = value
        if field.references is not None and value is not None:
            target = self.catalog.relation(field.references.relation)
            index = target.index_on(field.references.field)
            if index is None:
                raise SchemaError(
                    f"foreign key {relation_name}.{field_name} needs an "
                    f"index on {field.references.relation}."
                    f"{field.references.field}"
                )
            found = index.search(value)
            if found is None:
                raise QueryError(
                    f"foreign key violation: {field.references.relation}."
                    f"{field.references.field} has no value {value!r}"
                )
            physical_value = target.resolve(found)
        if txn is None:
            relation.update(ref, field_name, physical_value)
            return
        canonical = relation.resolve(ref)
        txn.lock_exclusive(relation_name, canonical.partition_id)

        def apply_update() -> Any:
            old_value = relation.read_field(canonical, field_name)
            relation.update(canonical, field_name, physical_value)
            return lambda: relation.update(canonical, field_name, old_value)

        txn.add_intention(apply_update)

    def fetch(
        self,
        relation_name: str,
        ref: TupleRef,
        txn: Optional[Transaction] = None,
    ) -> Dict[str, Any]:
        """Materialise a tuple as a dict of logical values.

        REF fields are presented as the referenced key value (following
        the pointer), matching the paper's "simply follow the pointer to
        the foreign relation tuple to obtain the desired value".

        With ``txn``, the tuple's partition is share-locked first —
        required for read-modify-write transactions (the S lock upgrades
        to X at the subsequent update, and conflicting upgrades resolve
        by deadlock detection).
        """
        relation = self.catalog.relation(relation_name)
        if txn is not None:
            canonical = relation.resolve(ref)
            txn.lock_shared(relation_name, canonical.partition_id)
        row = relation.fetch(ref)
        result: Dict[str, Any] = {}
        for field, value in zip(relation.schema.fields, row):
            if field.references is not None and isinstance(value, TupleRef):
                target = self.catalog.relation(field.references.relation)
                value = target.read_field(value, field.references.field)
            result[field.name] = value
        return result

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def execute(self, plan: PlanNode) -> TemporaryList:
        """Run an explicit plan."""
        return self.executor.execute(plan)

    # ------------------------------------------------------------------ #
    # foreign-key-aware predicates
    # ------------------------------------------------------------------ #

    def _rewrite_fk_predicate(
        self, relation_name: str, predicate: Optional[Predicate]
    ) -> Optional[Predicate]:
        """Make predicates on foreign-key columns behave logically.

        A FK column physically stores a tuple pointer, so a literal
        comparison against it would never match.  Equality predicates are
        rewritten to compare against the *resolved pointer* (preserving
        index lookups); ordered predicates are rewritten to follow the
        pointer and compare the referenced key value.
        """
        if predicate is None:
            return None
        relation = self.catalog.relation(relation_name)
        if isinstance(predicate, Conjunction):
            return Conjunction(
                tuple(
                    self._rewrite_fk_predicate(relation_name, part)
                    for part in predicate.parts
                )
            )
        if isinstance(predicate, Disjunction):
            return Disjunction(
                tuple(
                    self._rewrite_fk_predicate(relation_name, part)
                    for part in predicate.parts
                )
            )
        if not isinstance(predicate, Comparison):
            return predicate
        if predicate.field not in relation.schema.names:
            return predicate
        logical = relation.schema.field(predicate.field)
        if logical.references is None:
            return predicate
        if isinstance(predicate.value, TupleRef):
            return predicate  # caller already speaks pointers
        target = self.catalog.relation(logical.references.relation)
        index = target.index_on(logical.references.field)
        if predicate.op is Op.EQ and predicate.value is not None:
            found = index.search(predicate.value) if index else None
            if found is None:
                return _NeverMatches(predicate.field)
            return Comparison(
                predicate.field, Op.EQ, target.resolve(found)
            )
        return _FKValueComparison(
            predicate, target, logical.references.field
        )

    def selection_plan(
        self, relation_name: str, predicate: Optional[Predicate] = None
    ) -> PlanNode:
        """Build (without running) the plan :meth:`select` would run."""
        predicate = self._rewrite_fk_predicate(relation_name, predicate)
        return self.optimizer.plan_selection(relation_name, predicate)

    def select(
        self,
        relation_name: str,
        predicate: Optional[Predicate] = None,
        txn: Optional[Transaction] = None,
    ) -> TemporaryList:
        """Optimized single-relation selection.

        Under a transaction the relation-level resource is share-locked
        (coarse, as the paper argues short transactions allow).
        Predicates on foreign-key columns compare logically (see
        :meth:`_rewrite_fk_predicate`).
        """
        if txn is not None:
            txn.lock((relation_name, None), LockMode.SHARED)
        plan = self.selection_plan(relation_name, predicate)
        return self.executor.execute(plan)

    def join_plan(
        self,
        outer_name: str,
        inner_name: str,
        on: Tuple[str, str],
        method: str = "auto",
        outer_predicate: Optional[Predicate] = None,
        inner_predicate: Optional[Predicate] = None,
        op: str = "=",
    ) -> PlanNode:
        """Build (without running) the plan :meth:`join` would run."""
        outer_col, inner_col = on
        # Accept "Table.field" qualifiers when they name the respective
        # relation (the SQL layer passes them through verbatim).
        if "." in outer_col:
            qualifier, bare = outer_col.rsplit(".", 1)
            if qualifier == outer_name:
                outer_col = bare
        if "." in inner_col:
            qualifier, bare = inner_col.rsplit(".", 1)
            if qualifier == inner_name:
                inner_col = bare
        outer_predicate = self._rewrite_fk_predicate(outer_name, outer_predicate)
        inner_predicate = self._rewrite_fk_predicate(inner_name, inner_predicate)
        if op != "=":
            left = self.optimizer.plan_selection(outer_name, outer_predicate)
            inner_rel = self.catalog.relation(inner_name)
            usable_tree = (
                op != "!="
                and inner_predicate is None
                and inner_rel.index_on(inner_col, ordered=True) is not None
            )
            if usable_tree:
                plan = JoinNode(
                    left, ScanNode(inner_name), outer_col, inner_col,
                    "tree", op,
                )
            else:
                right = self.optimizer.plan_selection(
                    inner_name, inner_predicate
                )
                plan = JoinNode(
                    left, right, outer_col, inner_col, "nested_loops", op
                )
        elif method == "auto":
            plan = self.optimizer.plan_join(
                outer_name, inner_name, outer_col, inner_col,
                outer_predicate, inner_predicate,
            )
        else:
            left = self.optimizer.plan_selection(outer_name, outer_predicate)
            if method in ("tree", "tree_merge", "precomputed"):
                left = (
                    ScanNode(outer_name)
                    if method == "tree_merge"
                    else left
                )
                right: PlanNode = ScanNode(inner_name)
            else:
                right = self.optimizer.plan_selection(
                    inner_name, inner_predicate
                )
            join_col = inner_col
            if method == "precomputed":
                join_col = REF_COLUMN
            elif self._fk_matches(outer_name, outer_col, inner_name, inner_col):
                # The outer column physically stores a tuple pointer; a
                # value comparison against the inner key would never
                # match.  Compare pointers instead — the paper's Query 2.
                join_col = REF_COLUMN
            plan = JoinNode(left, right, outer_col, join_col, method)
        return plan

    def join(
        self,
        outer_name: str,
        inner_name: str,
        on: Tuple[str, str],
        method: str = "auto",
        outer_predicate: Optional[Predicate] = None,
        inner_predicate: Optional[Predicate] = None,
        op: str = "=",
    ) -> TemporaryList:
        """Two-relation join; ``method='auto'`` applies Section 4's
        preference order, or force one of the JOIN_METHODS.

        ``op`` other than "=" runs a non-equijoin (Section 3.3.5): the
        ordered ops ("<", "<=", ">", ">=") use a T-Tree on the inner
        column when one exists, else nested loops; "!=" always nested
        loops.
        """
        plan = self.join_plan(
            outer_name, inner_name, on, method,
            outer_predicate, inner_predicate, op,
        )
        return self.executor.execute(plan)

    def _fk_matches(
        self, outer_name: str, outer_col: str, inner_name: str, inner_col: str
    ) -> bool:
        """Whether outer_col is a FK pointer into inner_name.inner_col."""
        outer = self.catalog.relation(outer_name)
        if outer_col not in outer.schema.names:
            return False
        logical = outer.schema.field(outer_col)
        return (
            logical.references is not None
            and logical.references.relation == inner_name
            and logical.references.field == inner_col
        )

    def project(
        self,
        result: TemporaryList,
        columns: Sequence[str],
        deduplicate: bool = False,
        method: str = "hash",
    ) -> TemporaryList:
        """Descriptor projection with optional duplicate elimination."""
        projected = result.project(list(columns))
        if not deduplicate:
            return projected
        extractors = [projected.value_extractor(name) for name in columns]

        def row_key(row: Tuple[TupleRef, ...]) -> Tuple[Any, ...]:
            return tuple(extract(row) for extract in extractors)

        dedupe = project_hash if method == "hash" else project_sort_scan
        rows = dedupe(projected.rows(), row_key)
        return TemporaryList(projected.descriptor, rows)

    def explain(self, plan: PlanNode) -> str:
        """Render a plan tree."""
        return plan.explain()

    def _interpreter(self):
        from repro.sql.interpreter import SQLInterpreter

        if not hasattr(self, "_sql_interpreter"):
            self._sql_interpreter = SQLInterpreter(self)
        return self._sql_interpreter

    def sql(self, text: str):
        """Run one SQL statement (see :mod:`repro.sql` for the dialect).

        Returns a :class:`TemporaryList` for SELECT, a plan string for
        EXPLAIN, a list of tuple pointers for INSERT, an affected-row
        count for UPDATE/DELETE, and None for DDL.
        """
        return self._interpreter().execute(text)

    def prepare(self, text: str):
        """Compile a SQL statement with ``?`` placeholders once.

        The returned :class:`~repro.sql.prepared.PreparedStatement`
        re-binds per execution::

            stmt = db.prepare("SELECT Name FROM Employee WHERE Id = ?")
            stmt.execute(104)
            stmt.execute(105)

        Parameter values are type-checked against the schema at bind
        time, and with the plan cache enabled repeated executions skip
        the lexer, parser, and optimizer.
        """
        from repro.sql.prepared import PreparedStatement

        return PreparedStatement(self, text)

    # ------------------------------------------------------------------ #
    # recovery controls (durable mode)
    # ------------------------------------------------------------------ #

    def _require_durable(self) -> RecoveryManager:
        if self.recovery is None:
            raise TransactionError(
                "this database is volatile; construct with durable=True "
                "for recovery support"
            )
        return self.recovery

    def checkpoint(self) -> int:
        """Full checkpoint of every partition to the disk copy."""
        return self._require_durable().checkpoint_all()

    def propagate_log(self, max_partitions: Optional[int] = None) -> int:
        """Let the log device push accumulated changes to the disk copy."""
        manager = self._require_durable()
        manager.log_device.absorb()
        return manager.log_device.propagate(max_partitions)

    def crash(self) -> None:
        """Simulate loss of main memory (Figure 2 drill)."""
        self._require_durable().crash()

    def recover(
        self,
        working_set: Optional[Sequence[Tuple[str, int]]] = None,
        partial: bool = False,
    ) -> RestartStats:
        """Restart after a crash; see :class:`RecoveryManager.restart`.

        ``partial=True`` quarantines partitions whose stored image is
        damaged (see :attr:`RestartStats.quarantined`) instead of
        failing the whole restart.
        """
        return self._require_durable().restart(working_set, partial=partial)

    def finish_recovery(self) -> int:
        """Drain the background reload queue."""
        return self._require_durable().finish_background_reload()
