"""The MM-DBMS engine facade."""

from repro.engine.database import MainMemoryDatabase

__all__ = ["MainMemoryDatabase"]
