"""Join-order benchmark: written-order vs. cost-ordered multi-join chains.

Seeded 3/4/5-relation chains, each link generated with the Section 3.3.1
join-column machinery (uniform and Zipf duplicate distributions, heavy
hitters correlated across consecutive links).  Every query is written in
the worst order — largest relation first, the selective predicate on the
last table — so the written fold pays the full intermediate explosion
while the cost-based orderer starts from the filtered end and keeps the
build sides small.

Reported per chain: total Section-3.1 op counts and wall-clock for both
modes, plus their ratio.  The result rows are asserted bit-identical
between modes, and (for the batch engine) the cost-ordered counter
totals are asserted exactly equal across worker counts.
"""

from __future__ import annotations

try:
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
    )
except ImportError:  # pragma: no cover - direct execution
    from harness import (
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
    )

from repro.engine.database import MainMemoryDatabase
from repro.workloads.distributions import UNIFORM, ZipfDistribution
from repro.workloads.generator import RelationSpec, build_fk_chain

#: Chain cardinalities, largest first (written order starts at the
#: largest).  Scaled to one tenth by default, REPRO_FULL restores them.
CHAINS = {
    3: [scaled(12_000), scaled(8_000), scaled(4_000)],
    4: [scaled(15_000), scaled(10_000), scaled(6_000), scaled(3_000)],
    5: [
        scaled(15_000),
        scaled(10_000),
        scaled(7_000),
        scaled(4_000),
        scaled(2_500),
    ],
}

#: Duplicate percentage on every join column.
DUP_PERCENT = 30.0

#: Selectivity of the predicate on the last table (``val = 7``).
VAL_MODULUS = 50

DISTRIBUTIONS = (("uniform", UNIFORM), ("zipf", ZipfDistribution(1.1)))


def _build_chain_db(sizes, distribution) -> MainMemoryDatabase:
    """One database holding the chain tables T0..Tn-1.

    Column names are unique per table (``p2``/``n2``/``v2`` on T2) so
    the chain mirrors a real schema where link fields don't collide.
    """
    rng = bench_rng()
    db = configure_engine(MainMemoryDatabase())
    specs = [
        RelationSpec(size, DUP_PERCENT, distribution) for size in sizes
    ]
    chain = build_fk_chain(specs, 100.0, rng)
    for i, size in enumerate(sizes):
        columns = [f"k{i} INT", f"v{i} INT"]
        if "prev" in chain.columns[i]:
            columns.append(f"p{i} INT")
        if "next" in chain.columns[i]:
            columns.append(f"n{i} INT")
        db.sql(
            f"CREATE TABLE T{i} ({', '.join(columns)}, PRIMARY KEY (k{i}))"
        )
        prev = chain.columns[i].get("prev")
        nxt = chain.columns[i].get("next")
        for r in range(size):
            row = [r, r % VAL_MODULUS]
            if prev is not None:
                row.append(prev[r])
            if nxt is not None:
                row.append(nxt[r])
            db.insert(f"T{i}", row)
    return db


def _chain_query(n: int) -> str:
    """The written-order query: largest table first, filter on the last."""
    joins = " ".join(
        f"JOIN T{i} ON n{i - 1} = T{i}.p{i}" for i in range(1, n)
    )
    return f"SELECT * FROM T0 {joins} WHERE v{n - 1} = 7"


def _sorted_rows(result):
    return sorted(result.materialize(resolve_refs=True))


def run_joinorder_benchmark():
    """(series, summary) comparing written vs. cost-ordered chains."""
    series = SeriesCollector(
        "Multi-join ordering: written vs. cost-ordered chains "
        f"(dup={DUP_PERCENT:g}%, filter 1/{VAL_MODULUS})",
        "chain",
        [
            "written_ops",
            "cost_ops",
            "ops_ratio",
            "written_weighted",
            "cost_weighted",
            "written_seconds",
            "cost_seconds",
        ],
    )
    summary = {}
    for length, sizes in sorted(CHAINS.items()):
        for dist_label, distribution in DISTRIBUTIONS:
            db = _build_chain_db(sizes, distribution)
            query = _chain_query(length)

            db.configure_optimizer(join_ordering="written")
            written_res, written_ops, written_secs = measure(
                lambda: db.sql(query)
            )
            db.configure_optimizer(join_ordering="cost")
            cost_res, cost_ops, cost_secs = measure(lambda: db.sql(query))

            written_rows = _sorted_rows(written_res)
            if written_rows != _sorted_rows(cost_res):
                raise AssertionError(
                    f"ordering changed the result rows for {length}-chain "
                    f"({dist_label})"
                )
            label = f"{length}-{dist_label}"
            ratio = written_ops.total() / max(1, cost_ops.total())
            series.add(
                label,
                written_ops=written_ops.total(),
                cost_ops=cost_ops.total(),
                ops_ratio=round(ratio, 2),
                written_weighted=round(written_ops.weighted_cost()),
                cost_weighted=round(cost_ops.weighted_cost()),
                written_seconds=written_secs,
                cost_seconds=cost_secs,
            )
            summary[label] = {
                "rows": len(written_rows),
                "ops_ratio": round(ratio, 2),
                "written_counters": written_ops.as_dict(),
                "cost_counters": cost_ops.as_dict(),
            }
    return series, summary


def worker_counter_parity(length: int = 4, workers=(1, 2)) -> dict:
    """Cost-ordered chain on the batch engine: rows and the five counter
    totals must match exactly at every worker count."""
    sizes = CHAINS[length]
    query = _chain_query(length)
    reference = None
    for count in workers:
        db = _build_chain_db(sizes, ZipfDistribution(1.1))
        db.configure_optimizer(join_ordering="cost")
        db.configure_execution(
            engine="batch",
            workers=count,
            pool="inline" if count > 1 else None,
        )
        try:
            result, ops, __ = measure(lambda: db.sql(query))
            snapshot = (_sorted_rows(result), ops.as_dict())
        finally:
            db.configure_execution()
        if reference is None:
            reference = snapshot
        elif snapshot != reference:
            raise AssertionError(
                f"worker count {count} changed rows or counters"
            )
    return {"workers": list(workers), "counters": reference[1]}


def test_joinorder_speedup():
    series, summary = run_joinorder_benchmark()
    parity = worker_counter_parity()
    summary["worker_parity"] = parity
    series.publish("joinorder", extra=summary)
    for label, entry in summary.items():
        if label == "worker_parity":
            continue
        print(f"{label}: {entry['ops_ratio']}x fewer total ops")
    # Acceptance: >= 2x total-op reduction on the skewed 4+ chains.
    for label in ("4-zipf", "5-zipf"):
        assert summary[label]["ops_ratio"] >= 2.0, summary[label]


if __name__ == "__main__":
    test_joinorder_speedup()
