"""Graph 5 — Join Test 2: vary the inner |R2| from 1-100% of |R1|.

|R1| fixed at 30,000, keys only, 100% selectivity.  "The results obtained
here are similar to those of Test 1, with Tree Merge performing the best
if T Tree indices exist on both join columns, and Hash Join performing
the best otherwise."
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
    from benchmarks.join_common import JOIN_METHODS, run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled
    from join_common import JOIN_METHODS, run_join_methods

from repro.workloads import RelationSpec, build_join_pair

OUTER_N = scaled(30000)
PERCENTAGES = [1, 10, 25, 50, 75, 100]


def make_pair(pct):
    inner_n = max(1, OUTER_N * pct // 100)
    return build_join_pair(
        RelationSpec(OUTER_N), RelationSpec(inner_n), 100.0, bench_rng()
    )


def run_graph5() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 5 — Join Test 2: vary |R2| as % of |R1|={OUTER_N:,} "
        "(0% dups, 100% selectivity; weighted op cost)",
        "pct_of_outer",
        JOIN_METHODS,
    )
    for pct in PERCENTAGES:
        pair = make_pair(pct)
        stats = run_join_methods(pair.outer, pair.inner)
        series.add(pct, **{m: round(stats[m]["cost"]) for m in JOIN_METHODS})
    return series


def test_graph05_series():
    series = run_graph5()
    series.publish("graph05_join_inner")
    for i, pct in enumerate(PERCENTAGES):
        tm = series.column("tree_merge")[i]
        hj = series.column("hash_join")[i]
        tj = series.column("tree_join")[i]
        # Tree Merge best with both indexes; Hash Join best otherwise.
        assert tm < hj, pct
        assert hj < tj, pct
    # Sort Merge pays |R1| log |R1| regardless of |R2|: worst at every
    # point of this sweep.
    for i in range(len(PERCENTAGES)):
        assert series.column("sort_merge")[i] > series.column("hash_join")[i]


def test_join_inner_bench(benchmark):
    pair = make_pair(50)
    benchmark.pedantic(
        lambda: run_join_methods(pair.outer, pair.inner, ["hash_join"]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph5().show()
