"""Morsel-driven parallel engine across worker counts.

Runs the Graph-2-style 60/20/20 query mix (the same plan trees as
``bench_vectorized.py``: 18 selections, 6 hash joins, 6 hash-dedup
projections) through the batch engine at each ``--workers`` count and
reports wall-clock, weighted cost, and raw counters per worker count,
plus a parallel T-Tree index build series.

Two properties are asserted:

* **determinism** — every worker count produces identical result rows
  and identical merged Section 3.1 counter totals (the
  ``deref_saved_traversals`` extra is excluded: per-morsel memos cannot
  span morsel boundaries, see DESIGN.md section 3.9);
* **speedup** — with >= 4 CPU cores, a usable fork pool and full-scale
  data, 4 workers must beat workers=1 by >= 2x wall-clock on the mix.
  On smaller hosts or scaled-down data the speedup is recorded but
  informational (morsel dispatch cannot beat Amdahl on one core);
  set ``REPRO_REQUIRE_SPEEDUP=1`` to force the gate.
"""

from __future__ import annotations

import os

try:
    from benchmarks.bench_vectorized import (
        N_INNER,
        N_OUTER,
        N_QUERIES,
        build_db,
        query_mix,
        run_mix,
    )
    from benchmarks.harness import (
        FULL_SCALE,
        WORKERS,
        SeriesCollector,
        configure_engine,
        measure,
    )
except ImportError:  # pragma: no cover - direct execution
    from bench_vectorized import (
        N_INNER,
        N_OUTER,
        N_QUERIES,
        build_db,
        query_mix,
        run_mix,
    )
    from harness import (
        FULL_SCALE,
        WORKERS,
        SeriesCollector,
        configure_engine,
        measure,
    )

from repro.instrument import counters_scope
from repro.query.parallel import fork_available

TIMING_ROUNDS = 3
REQUIRED_SPEEDUP = 2.0
GATED_WORKERS = 4

#: Worker counts to sweep: the ``--workers`` selection, or the
#: canonical {1, 2, 4} ladder when none was given.
WORKER_SWEEP = WORKERS if WORKERS != (1,) else (1, 2, 4)

#: Morsels sized so every scan decomposes into ~8 units even at the
#: scaled-down default cardinalities.
MORSEL_SIZE = max(256, N_OUTER // 8)


def _pool_mode() -> str:
    return "process" if fork_available() else "inline"


def _cpu_count() -> int:
    try:
        return os.cpu_count() or 1
    except Exception:  # pragma: no cover
        return 1


def speedup_gate_active() -> bool:
    """Enforce the 2x gate only where 2x is physically attainable."""
    if os.environ.get("REPRO_REQUIRE_SPEEDUP", "") not in ("", "0"):
        return True
    return (
        FULL_SCALE
        and _cpu_count() >= GATED_WORKERS
        and fork_available()
        and GATED_WORKERS in WORKER_SWEEP
        and 1 in WORKER_SWEEP
    )


def _counters_key(snapshot) -> dict:
    counts = snapshot.as_dict()
    counts.pop("deref_saved_traversals", None)
    return counts


def run_query_mix(db, plans, series):
    """Time the mix per worker count.

    Returns ``(best_seconds, latencies)`` where ``latencies`` maps a
    ``workers=N`` label to every timed round's wall-clock, feeding the
    harness's embedded p50/p95/p99 summaries.
    """
    seconds = {}
    latencies = {}
    reference_counts = None
    reference_rows = None
    for workers in WORKER_SWEEP:
        configure_engine(
            db,
            engine="batch",
            workers=workers,
            morsel_size=MORSEL_SIZE,
            pool=_pool_mode(),
        )
        with counters_scope() as scope:
            rows = [db.executor.execute(plan).rows() for plan in plans]
        counts = _counters_key(scope.snapshot())
        if reference_counts is None:
            reference_counts, reference_rows = counts, rows
        else:
            assert rows == reference_rows, (
                f"workers={workers} changed result rows"
            )
            assert counts == reference_counts, (
                f"workers={workers} changed merged counter totals: "
                f"{counts} != {reference_counts}"
            )
        best = None
        snap = None
        samples = latencies.setdefault(f"workers={workers}", [])
        for _ in range(TIMING_ROUNDS):
            _, counters, elapsed = measure(lambda: run_mix(db, plans))
            samples.append(elapsed)
            if best is None or elapsed < best:
                best, snap = elapsed, counters
        seconds[workers] = best
        series.add(
            workers,
            seconds=best,
            speedup_vs_1=round(seconds[WORKER_SWEEP[0]] / best, 3),
            cost=snap.weighted_cost(),
            comparisons=snap.comparisons,
            traversals=snap.traversals,
            hashes=snap.hashes,
        )
    configure_engine(db, engine="tuple")
    return seconds, latencies


def run_index_build(db, series):
    """Time sequential vs. parallel T-Tree builds on the Orders table."""
    relation = db.catalog.relation("Orders")
    for label, workers in [("sequential", 1)] + [
        (f"parallel@{n}", n) for n in WORKER_SWEEP if n > 1
    ]:
        configure_engine(
            db,
            engine="batch",
            workers=workers,
            morsel_size=MORSEL_SIZE,
            pool=_pool_mode(),
        )
        best = None
        snap = None
        for _ in range(TIMING_ROUNDS):
            _, counters, elapsed = measure(
                lambda: relation.create_index(
                    "bench_qty_ix", "Qty", kind="ttree",
                    parallel=workers > 1,
                )
            )
            relation.drop_index("bench_qty_ix")
            if best is None or elapsed < best:
                best, snap = elapsed, counters
        series.add(
            f"index build {label}",
            seconds=best,
            cost=snap.weighted_cost(),
            traversals=snap.traversals,
            comparisons=snap.comparisons,
        )
    configure_engine(db, engine="tuple")


def main() -> None:
    db = build_db()
    plans = query_mix()

    series = SeriesCollector(
        f"Morsel-parallel batch engine - query mix 60/20/20, "
        f"|Orders|={N_OUTER}, |Parts|={N_INNER}, morsel={MORSEL_SIZE}",
        "workers",
        [
            "seconds",
            "speedup_vs_1",
            "cost",
            "comparisons",
            "traversals",
            "hashes",
        ],
    )
    seconds, latencies = run_query_mix(db, plans, series)

    build_series = SeriesCollector(
        f"Parallel T-Tree index build, |Orders|={N_OUTER}",
        "build",
        ["seconds", "cost", "traversals", "comparisons"],
    )
    run_index_build(db, build_series)
    build_series.show()

    baseline = seconds[WORKER_SWEEP[0]]
    speedups = {
        workers: round(baseline / elapsed, 3)
        for workers, elapsed in seconds.items()
    }
    gate = speedup_gate_active()
    series.publish(
        "parallel_query_mix",
        extra={
            "speedups": {str(k): v for k, v in speedups.items()},
            "required_speedup": REQUIRED_SPEEDUP,
            "speedup_gate_enforced": gate,
            "pool": _pool_mode(),
            "cpu_count": _cpu_count(),
            "morsel_size": MORSEL_SIZE,
            "queries": N_QUERIES,
            "mix": {"selections": 18, "joins": 6, "projections": 6},
            "index_build": {
                str(x): values for x, values in build_series.points
            },
        },
        config={"engine": "batch", "workers": list(WORKER_SWEEP)},
        latencies=latencies,
    )
    print(
        f"speedups vs workers={WORKER_SWEEP[0]}: {speedups} "
        f"(gate {'ENFORCED' if gate else 'informational'}: "
        f">= {REQUIRED_SPEEDUP}x at {GATED_WORKERS} workers)"
    )
    if gate:
        achieved = speedups.get(GATED_WORKERS, 0.0)
        assert achieved >= REQUIRED_SPEEDUP, (
            f"parallel speedup {achieved:.2f}x at {GATED_WORKERS} workers "
            f"is below the required {REQUIRED_SPEEDUP}x"
        )


if __name__ == "__main__":
    main()
