"""Ablation — the quicksort / insertion-sort cutoff (footnote 6).

"We ran a test to determine the optimal subarray size for switching from
quicksort to insertion sort; the optimal subarray size was 10."  This
bench re-runs that experiment: sweep the cutoff and sort the projection
workload, reporting weighted operation cost.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro.query import sort as sort_module
from repro.query.sort import quicksort
from repro.workloads import unique_keys

N = scaled(30000)
CUTOFFS = [1, 2, 5, 10, 20, 40, 80]


def sort_cost_at_cutoff(cutoff: int, values) -> float:
    original = sort_module.INSERTION_SORT_CUTOFF
    sort_module.INSERTION_SORT_CUTOFF = cutoff
    try:
        working = list(values)
        __, counters, __ = measure(lambda: quicksort(working))
        assert working == sorted(values)
        return counters.weighted_cost()
    finally:
        sort_module.INSERTION_SORT_CUTOFF = original


def run_cutoff_ablation() -> SeriesCollector:
    values = unique_keys(N, bench_rng())
    series = SeriesCollector(
        f"Ablation — insertion-sort cutoff (footnote 6); "
        f"sorting {N:,} random keys",
        "cutoff",
        ["weighted_cost"],
    )
    for cutoff in CUTOFFS:
        series.add(cutoff, weighted_cost=round(sort_cost_at_cutoff(cutoff, values)))
    return series


def test_cutoff_ablation():
    series = run_cutoff_ablation()
    series.publish("ablation_sort_cutoff")
    costs = dict(zip(series.xs(), series.column("weighted_cost")))
    best = min(costs, key=costs.get)
    # The paper's optimum of 10 should be at (or adjacent to) the sweet
    # spot under our cost model: strictly better than the extremes.
    assert costs[10] < costs[1]
    assert costs[10] < costs[80]
    assert best in (5, 10, 20)


def test_sort_cutoff_bench(benchmark):
    values = unique_keys(scaled(30000), bench_rng())
    benchmark(lambda: quicksort(list(values)))


if __name__ == "__main__":
    run_cutoff_ablation().show()
