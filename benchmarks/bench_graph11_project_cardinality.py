"""Graph 11 — Project Test 1: vary |R| with no duplicates.

Duplicate elimination over single-column relations; the hash table holds
|R|/2 buckets.  "The insertion overhead in the hash table is linear for
all values of |R| ... while the cost for sorting goes as O(|R| log |R|).
As the number of tuples becomes large, this sorting cost dominates ...
the Hashing method is the clear winner in this test."
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro.query.project import project_hash, project_sort_scan
from repro.workloads import unique_keys

CARDINALITIES = [scaled(n) for n in (3750, 7500, 15000, 22500, 30000)]


def run_graph11() -> SeriesCollector:
    series = SeriesCollector(
        "Graph 11 — Project Test 1: vary |R| (no duplicates; "
        "weighted op cost)",
        "tuples",
        ["hash", "sort_scan"],
    )
    for n in CARDINALITIES:
        values = unique_keys(n, bench_rng())
        __, hash_counters, __ = measure(lambda: project_hash(values))
        __, sort_counters, __ = measure(lambda: project_sort_scan(values))
        series.add(
            n,
            hash=round(hash_counters.weighted_cost()),
            sort_scan=round(sort_counters.weighted_cost()),
        )
    return series


def test_graph11_series():
    series = run_graph11()
    series.publish("graph11_project_cardinality")
    hash_col = series.column("hash")
    sort_col = series.column("sort_scan")
    # Hashing wins at every cardinality.
    for h, s in zip(hash_col, sort_col):
        assert h < s
    # Hashing is linear: cost per tuple roughly constant across the sweep.
    per_tuple = [h / n for h, n in zip(hash_col, CARDINALITIES)]
    assert max(per_tuple) < 1.4 * min(per_tuple)
    # Sorting is super-linear: its per-tuple cost grows with |R|.
    sort_per_tuple = [s / n for s, n in zip(sort_col, CARDINALITIES)]
    assert sort_per_tuple[-1] > sort_per_tuple[0]


@pytest.mark.parametrize("method", ["hash", "sort_scan"])
def test_project_cardinality_bench(benchmark, method):
    values = unique_keys(scaled(15000), bench_rng())
    func = project_hash if method == "hash" else project_sort_scan
    benchmark(lambda: func(values))


if __name__ == "__main__":
    run_graph11().show()
