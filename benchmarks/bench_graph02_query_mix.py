"""Graph 2 — query mix of 60% searches / 20% inserts / 20% deletes, plus
the 80/10/10 and 40/30/30 mixes of Section 3.2.2.

Expected shape: the array is ~two orders of magnitude worse than anything
else (omitted from the main series for scale, reported separately); Linear
Hashing much slower than the other hash methods (utilization-driven
reorganisation thrash); T-Tree beats AVL and B-Tree ("because of its
better combined search / update capability"); the small-node hash methods
are basically equivalent.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
    from benchmarks.index_common import (
        NODE_SIZED,
        NODE_SIZES,
        STRUCTURES,
        build_index,
        load_index,
    )
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled
    from index_common import (
        NODE_SIZED,
        NODE_SIZES,
        STRUCTURES,
        build_index,
        load_index,
    )

from repro.workloads import query_mix_operations, unique_keys

N_KEYS = scaled(30000)
N_OPS = scaled(30000)

#: The paper's three mixes: (search %, insert %, delete %).
MIXES = [(80, 10, 10), (60, 20, 20), (40, 30, 30)]

#: The array's quadratic updates dominate everything; sweep it at a
#: reduced op count and extrapolate, exactly to keep runtimes sane.
ARRAY_OPS = max(200, N_OPS // 20)


def mix_workload(index, operations):
    def run():
        for op, key in operations:
            if op == "search":
                index.search(key)
            elif op == "insert":
                index.insert(key)
            else:
                index.delete(key)
    return run


def run_graph2(mix=(60, 20, 20)) -> SeriesCollector:
    search_pct, insert_pct, delete_pct = mix
    rng = bench_rng()
    keys = unique_keys(N_KEYS, rng)
    series = SeriesCollector(
        f"Graph 2 — Query Mix {search_pct}/{insert_pct}/{delete_pct} "
        f"({N_KEYS:,} elements, {N_OPS:,} ops; weighted op cost)",
        "node_size",
        STRUCTURES,
    )

    def cost_for(kind, node_size):
        op_count = ARRAY_OPS if kind == "array" else N_OPS
        op_rng = bench_rng()
        operations = list(
            query_mix_operations(
                keys, op_count, search_pct, insert_pct, delete_pct, op_rng
            )
        )
        index = load_index(build_index(kind, node_size, N_KEYS), keys)
        __, counters, __ = measure(mix_workload(index, operations))
        cost = counters.weighted_cost()
        if kind == "array":
            cost *= N_OPS / op_count  # extrapolate to the full op count
        return round(cost)

    flat_cost = {
        kind: cost_for(kind, 0)
        for kind in STRUCTURES
        if kind not in NODE_SIZED
    }
    for node_size in NODE_SIZES:
        cells = {}
        for kind in STRUCTURES:
            if kind in NODE_SIZED:
                cells[kind] = cost_for(kind, node_size)
            else:
                cells[kind] = flat_cost[kind]
        series.add(node_size, **cells)
    return series


def test_graph02_series_60_20_20():
    """The representative mix the paper plots (Graph 2)."""
    series = run_graph2((60, 20, 20))
    series.publish("graph02_query_mix_60_20_20")
    mid = NODE_SIZES.index(20)
    ttree = series.column("ttree")
    avl = series.column("avl")
    btree = series.column("btree")
    array = series.column("array")
    linear = series.column("linear_hash")
    mlh = series.column("modified_linear_hash")
    cbh = series.column("chained_hash")
    # "The T Tree performs better than the AVL Tree and the B Tree here."
    assert ttree[mid] < avl[mid]
    assert ttree[mid] < btree[mid]
    # The array is far worse than every tree (the gap grows linearly with
    # |R|: ~7x at the scaled size, two orders of magnitude at the paper's
    # 30,000 elements).
    assert array[mid] > 4 * btree[mid]
    # Linear Hashing's utilization-maintenance thrash makes it the slowest
    # linear-hash family member at small node sizes.
    assert linear[0] > 1.1 * mlh[0]
    assert linear[0] > 1.3 * cbh[0]


@pytest.mark.parametrize("mix", MIXES, ids=["80-10-10", "60-20-20", "40-30-30"])
def test_graph02_all_mixes_ttree_beats_avl_and_btree(mix):
    series = run_graph2(mix)
    name = f"graph02_query_mix_{mix[0]}_{mix[1]}_{mix[2]}"
    series.publish(name)
    mid = NODE_SIZES.index(20)
    ttree = series.column("ttree")[mid]
    # The T-Tree's update advantage grows with the update fraction; at the
    # search-heavy 80/10/10 mix it is merely neck-and-neck with AVL
    # (search alone slightly favours AVL, Graph 1).
    if mix[0] <= 60:
        assert ttree < series.column("avl")[mid]
    else:
        assert ttree < series.column("avl")[mid] * 1.1
    assert ttree < series.column("btree")[mid]


@pytest.mark.parametrize("kind", ["ttree", "avl", "btree", "modified_linear_hash"])
def test_query_mix_microbench(benchmark, kind):
    """Wall-clock micro-benchmark of 2,000 mixed operations."""
    rng = bench_rng()
    keys = unique_keys(scaled(30000), rng)
    operations = list(
        query_mix_operations(keys, 2000, 60, 20, 20, bench_rng())
    )
    index = load_index(build_index(kind, 20, len(keys)), keys)
    ops_template = list(operations)

    def run():
        # Re-apply inserts/deletes in pairs keeps the index stable enough
        # for repeated benchmark rounds.
        for op, key in ops_template:
            if op == "search":
                index.search(key)

    benchmark(run)


if __name__ == "__main__":
    for mix in MIXES:
        run_graph2(mix).show()
