"""Graph 3 — distribution of duplicate values.

The paper plots, for each truncated-normal standard deviation (0.1
skewed, 0.4 moderate, 0.8 near-uniform), the cumulative percentage of
tuples held by the top X percent of values.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled

from repro.workloads.distributions import (
    MODERATE_SIGMA,
    NEAR_UNIFORM_SIGMA,
    SKEWED_SIGMA,
    cumulative_tuple_share,
    duplicate_counts,
)

N_TUPLES = scaled(20000)
N_VALUES = max(20, N_TUPLES // 100)

SIGMAS = [
    ("skewed_0.1", SKEWED_SIGMA),
    ("moderate_0.4", MODERATE_SIGMA),
    ("near_uniform_0.8", NEAR_UNIFORM_SIGMA),
]

X_POINTS = [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


def run_graph3() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 3 — Distribution of Duplicate Values "
        f"({N_TUPLES:,} tuples over {N_VALUES:,} values; % of tuples)",
        "percent_values",
        [name for name, __ in SIGMAS],
    )
    curves = {}
    for name, sigma in SIGMAS:
        counts = duplicate_counts(N_VALUES, N_TUPLES, sigma, bench_rng())
        curve = cumulative_tuple_share(counts)
        curves[name] = curve
    for x in X_POINTS:
        cells = {}
        for name, __ in SIGMAS:
            share = next(s for pct, s in curves[name] if pct >= x)
            cells[name] = round(share, 1)
        series.add(x, **cells)
    return series


def test_graph03_series():
    series = run_graph3()
    series.publish("graph03_distributions")
    skewed = series.column("skewed_0.1")
    moderate = series.column("moderate_0.4")
    uniform = series.column("near_uniform_0.8")
    ten = X_POINTS.index(10)
    fifty = X_POINTS.index(50)
    # Skewed: ~10% of values hold roughly two thirds of the tuples.
    assert 55 <= skewed[ten] <= 80
    # Ordering of the three curves everywhere below 100%.
    for i in range(len(X_POINTS) - 1):
        assert skewed[i] >= moderate[i] >= uniform[i]
    # Near-uniform is close to the diagonal at the halfway point.
    assert uniform[fifty] <= 70
    # All curves reach 100% at 100% of values.
    assert skewed[-1] == moderate[-1] == uniform[-1] == 100.0


def test_graph03_bench(benchmark):
    benchmark(
        lambda: duplicate_counts(N_VALUES, N_TUPLES, SKEWED_SIGMA, bench_rng())
    )


if __name__ == "__main__":
    run_graph3().show()
