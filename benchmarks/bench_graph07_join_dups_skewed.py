"""Graph 7 — Join Test 4: vary duplicate percentage, skewed distribution.

|R1| = |R2| = 20,000, 100% semijoin selectivity, sigma = 0.1.  Join output
explodes as duplicates rise; "the Sort Merge method is the most efficient
of the algorithms for scanning large numbers of tuples ... once the
skewed duplicate percentage reaches about 80 percent ... it beats even
Tree Merge ...  The Index Join methods ... begin to lose to Sort Merge
when the skewed duplicate percentage reaches about 40 percent."
"""

import pytest

try:
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        crossover_points,
        scaled,
    )
    from benchmarks.join_common import JOIN_METHODS, run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, crossover_points, scaled
    from join_common import JOIN_METHODS, run_join_methods

from repro.workloads import DuplicateDistribution, RelationSpec, build_join_pair
from repro.workloads.distributions import SKEWED_SIGMA

N = scaled(20000)
DUP_PERCENTAGES = [0, 20, 40, 60, 80, 95]


def make_pair(dup_pct, sigma=SKEWED_SIGMA):
    dist = DuplicateDistribution(sigma)
    return build_join_pair(
        RelationSpec(N, dup_pct, dist),
        RelationSpec(N, dup_pct, dist),
        100.0,
        bench_rng(),
    )


def run_graph7() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 7 — Join Test 4: vary duplicates, skewed dist. "
        f"(|R|={N:,}; weighted op cost)",
        "dup_pct",
        JOIN_METHODS + ["result_size"],
    )
    for dup_pct in DUP_PERCENTAGES:
        pair = make_pair(dup_pct)
        stats = run_join_methods(pair.outer, pair.inner)
        cells = {m: round(stats[m]["cost"]) for m in JOIN_METHODS}
        cells["result_size"] = stats["hash_join"]["results"]
        series.add(dup_pct, **cells)
    return series


def test_graph07_series():
    series = run_graph7()
    series.publish("graph07_join_dups_skewed")
    sm = series.column("sort_merge")
    hj = series.column("hash_join")
    tj = series.column("tree_join")
    tm = series.column("tree_merge")
    sizes = series.column("result_size")
    # The result size explodes with skewed duplicates (hundreds of times
    # the input size at the high end).
    assert sizes[-1] > 20 * sizes[0]
    # At 0% duplicates Sort Merge is the worst method...
    assert sm[0] > hj[0] and sm[0] > tm[0]
    # ...but at the top of the sweep it beats the index joins, and the
    # crossovers happen inside the sweep (paper: ~40% vs index joins,
    # ~80% vs Tree Merge).
    assert sm[-1] < hj[-1]
    assert sm[-1] < tj[-1]
    assert sm[-1] < tm[-1]
    assert crossover_points(sm, hj, DUP_PERCENTAGES)
    assert crossover_points(sm, tm, DUP_PERCENTAGES)


def test_join_dups_skewed_bench(benchmark):
    pair = make_pair(60)
    benchmark.pedantic(
        lambda: run_join_methods(pair.outer, pair.inner, ["sort_merge"]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph7().show()
