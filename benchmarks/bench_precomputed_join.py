"""Section 2.1 — the precomputed join (Queries 1 and 2).

Not one of the paper's graphs ("the precomputed join ... was not tested
along with the other join methods.  Intuitively, it would beat each of
the join methods in every case, because the joining tuples have already
been paired") — this bench verifies that intuition inside the full
MM-DBMS engine, comparing the pointer-following join against every other
method on the Employee ⋈ Department workload, scaled up.
"""

import random

import pytest

try:
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
    )
except ImportError:
    from harness import (
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
    )

from repro import Field, FieldType, ForeignKey, MainMemoryDatabase
from repro.query.plan import REF_COLUMN, JoinNode, ScanNode

N_DEPARTMENTS = scaled(3000)
N_EMPLOYEES = scaled(30000)

METHODS = ["precomputed", "hash", "sort_merge", "nested_loops"]


def build_db():
    db = configure_engine(MainMemoryDatabase())
    db.create_relation(
        "Department",
        [Field("Name", FieldType.STR), Field("Id", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "Employee",
        [
            Field("Name", FieldType.STR),
            Field("Id", FieldType.INT),
            Field("Age", FieldType.INT),
            Field(
                "Dept_Id",
                FieldType.INT,
                references=ForeignKey("Department", "Id"),
            ),
        ],
        primary_key="Id",
    )
    rng = bench_rng()
    for dept_id in range(N_DEPARTMENTS):
        db.insert("Department", [f"dept-{dept_id}", dept_id])
    for emp_id in range(N_EMPLOYEES):
        db.insert(
            "Employee",
            [
                f"emp-{emp_id}",
                emp_id,
                rng.randrange(18, 70),
                rng.randrange(N_DEPARTMENTS),
            ],
        )
    return db


def run_precomputed_comparison() -> SeriesCollector:
    db = build_db()
    series = SeriesCollector(
        f"Precomputed Join — Employee({N_EMPLOYEES:,}) x "
        f"Department({N_DEPARTMENTS:,}); weighted op cost",
        "method",
        ["cost", "seconds", "results"],
    )
    for method in METHODS:
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Dept_Id", REF_COLUMN, method,
        )
        result, counters, seconds = measure(lambda: db.execute(plan))
        series.add(
            method,
            cost=round(counters.weighted_cost()),
            seconds=round(seconds, 3),
            results=len(result),
        )
    return series


def test_precomputed_beats_every_method():
    series = run_precomputed_comparison()
    series.publish("precomputed_join")
    costs = dict(zip(series.xs(), series.column("cost")))
    results = series.column("results")
    assert len(set(results)) == 1  # all methods agree
    for method in METHODS[1:]:
        assert costs["precomputed"] < costs[method], method


def test_precomputed_join_bench(benchmark):
    db = build_db()
    plan = JoinNode(
        ScanNode("Employee"), ScanNode("Department"),
        "Dept_Id", REF_COLUMN, "precomputed",
    )
    benchmark.pedantic(lambda: db.execute(plan), rounds=1, iterations=2)


if __name__ == "__main__":
    run_precomputed_comparison().show()
