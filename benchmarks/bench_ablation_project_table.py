"""Ablation — hash-table sizing for duplicate elimination.

The paper fixes the projection hash table at |R|/2 buckets ("the hash
table size was always chosen to be |R|/2").  This ablation sweeps the
table-size fraction to show the trade-off that choice sits on: bigger
tables shorten chains but cost allocation/storage; smaller tables pay in
probe comparisons.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro.query.project import project_hash
from repro.workloads import DuplicateDistribution, RelationSpec, build_values

N = scaled(30000)
FRACTIONS = [0.125, 0.25, 0.5, 1.0, 2.0]


def make_column(dup_pct=30.0):
    rng = bench_rng()
    spec = RelationSpec(N, dup_pct, DuplicateDistribution(None))
    pool = rng.sample(range(N * 100), spec.unique_values())
    return build_values(spec, pool, rng)


def run_table_size_ablation() -> SeriesCollector:
    values = make_column()
    series = SeriesCollector(
        f"Ablation — projection hash-table sizing (|R|={N:,}, 30% dups)",
        "table_fraction",
        ["weighted_cost", "comparisons", "table_slots"],
    )
    for fraction in FRACTIONS:
        size = max(4, int(len(values) * fraction))
        __, counters, __ = measure(
            lambda: project_hash(values, table_size=size)
        )
        series.add(
            fraction,
            weighted_cost=round(counters.weighted_cost()),
            comparisons=counters.comparisons,
            table_slots=size,
        )
    return series


def test_table_size_ablation():
    series = run_table_size_ablation()
    series.publish("ablation_project_table")
    comparisons = dict(zip(series.xs(), series.column("comparisons")))
    costs = dict(zip(series.xs(), series.column("weighted_cost")))
    # Smaller tables mean longer chains, hence more comparisons.
    assert comparisons[0.125] > comparisons[0.5] > comparisons[2.0]
    # The paper's |R|/2 sits within 25% of the best point of the sweep —
    # a sensible middle of the trade-off, not a cliff.
    best = min(costs.values())
    assert costs[0.5] <= best * 1.25


def test_project_table_bench(benchmark):
    values = make_column()
    benchmark(lambda: project_hash(values))


if __name__ == "__main__":
    run_table_size_ablation().show()
