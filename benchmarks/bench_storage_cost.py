"""Section 3.2.2 "Storage Cost" — storage factor relative to the array.

The paper reports factors rather than bytes: AVL = 3 (two node pointers
per item), Chained Bucket Hashing = 2.3 (one chain pointer per item plus a
partially unused table), Modified Linear Hashing similar to CBH at chain
length 2 and approaching 2 as chains grow, and Linear Hashing / B-Trees /
Extendible Hashing / T-Trees all near 1.5 for medium-to-large nodes, with
Extendible Hashing blowing up at small node sizes (2, 4, 6) from repeated
directory doubling.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
    from benchmarks.index_common import (
        NODE_SIZED,
        NODE_SIZES,
        STRUCTURES,
        build_index,
        load_index,
    )
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled
    from index_common import (
        NODE_SIZED,
        NODE_SIZES,
        STRUCTURES,
        build_index,
        load_index,
    )

from repro.workloads import unique_keys

N_KEYS = scaled(30000)


def run_storage_cost() -> SeriesCollector:
    rng = bench_rng()
    keys = unique_keys(N_KEYS, rng)
    series = SeriesCollector(
        f"Storage Cost — factor over the array baseline "
        f"({N_KEYS:,} elements)",
        "node_size",
        STRUCTURES,
    )
    flat = {}
    for kind in STRUCTURES:
        if kind in NODE_SIZED:
            continue
        index = load_index(build_index(kind, 0, N_KEYS), keys)
        flat[kind] = round(index.storage_factor(), 2)
    for node_size in NODE_SIZES:
        cells = {}
        for kind in STRUCTURES:
            if kind in NODE_SIZED:
                index = load_index(build_index(kind, node_size, N_KEYS), keys)
                cells[kind] = round(index.storage_factor(), 2)
            else:
                cells[kind] = flat[kind]
        series.add(node_size, **cells)
    return series


def test_storage_cost_series():
    series = run_storage_cost()
    series.publish("storage_cost")
    mid = NODE_SIZES.index(20)
    # The array is the baseline: exactly 1.0.
    assert series.column("array")[mid] == pytest.approx(1.0)
    # "The AVL Tree storage factor was 3."
    assert series.column("avl")[mid] == pytest.approx(3.0, abs=0.01)
    # "Chained Bucket Hashing had a storage factor of 2.3".
    assert 2.0 <= series.column("chained_hash")[mid] <= 2.6
    # "Linear Hashing, B Trees, Extendible Hashing and T Trees all had
    # nearly equal storage factors of 1.5 for medium to large size nodes."
    for kind in ("linear_hash", "btree", "extendible_hash", "ttree"):
        for position in (mid, len(NODE_SIZES) - 1):
            assert 1.0 <= series.column(kind)[position] <= 2.1, kind
    # Extendible Hashing blows up at small node sizes.
    eh = series.column("extendible_hash")
    assert eh[0] > 2 * eh[mid]
    # MLH approaches 2.0 (pointer per item) as chains grow and the
    # directory amortises.
    mlh = series.column("modified_linear_hash")
    assert mlh[-1] == pytest.approx(2.0, abs=0.3)
    assert mlh[0] >= mlh[-1]


def test_storage_cost_bench(benchmark):
    """Time the byte-accounting walk itself (cheap but tracked)."""
    rng = bench_rng()
    keys = unique_keys(scaled(30000), rng)
    index = load_index(build_index("ttree", 20, len(keys)), keys)
    benchmark(index.storage_bytes)


if __name__ == "__main__":
    run_storage_cost().show()
