"""Shared construction logic for the index benchmarks (Graphs 1-2, S1).

The paper reduced every structure's knobs to a single "node size" axis:
for T-Trees and B-Trees it is the node capacity, for Extendible and Linear
Hashing the bucket capacity, and for Modified Linear Hashing "the 'Node
Size' axis in the graphs refers to the average overflow bucket chain
length".  Arrays, AVL trees, and Chained Bucket Hashing have no node-size
knob and plot as flat lines.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.indexes import INDEX_KINDS

#: Graph x-axis, matching the paper's 2..100 sweep.
NODE_SIZES = [2, 6, 10, 20, 40, 60, 80, 100]

#: Display order: order-preserving structures then hash structures,
#: mirroring the solid/dashed split of the paper's graphs.
STRUCTURES = [
    "array",
    "avl",
    "btree",
    "ttree",
    "chained_hash",
    "extendible_hash",
    "linear_hash",
    "modified_linear_hash",
]

#: Structures whose cost varies with the node-size axis.
NODE_SIZED = {"btree", "ttree", "extendible_hash", "linear_hash",
              "modified_linear_hash"}


def build_index(kind: str, node_size: int, expected: int):
    """Instantiate ``kind`` configured for this node size and load."""
    cls = INDEX_KINDS[kind]
    if kind in ("btree", "ttree"):
        size = max(3, node_size) if kind == "btree" else max(2, node_size)
        return cls(unique=True, node_size=size)
    if kind in ("extendible_hash", "linear_hash"):
        return cls(unique=True, node_size=max(1, node_size))
    if kind == "modified_linear_hash":
        return cls(unique=True, chain_target=float(max(1, node_size)))
    if kind == "chained_hash":
        return cls.for_expected(expected, unique=True)
    return cls(unique=True)  # array, avl


def load_index(index, keys: Sequence[Any]):
    """Bulk-insert keys (the paper's "create" phase)."""
    if index.kind == "array":
        # Loading an array by repeated sorted insert is quadratic; the
        # paper builds arrays in bulk.  Storage/search behaviour is
        # identical, so seed it directly.
        from repro.indexes.array_index import ArrayIndex
        from repro.query.sort import quicksort

        loaded = ArrayIndex.build_unsorted(list(keys), unique=True)
        loaded.sort_in_place(lambda items: quicksort(items))
        return loaded
    for key in keys:
        index.insert(key)
    return index
