"""Validation — does the Section 4 optimizer actually pick well?

The paper's closing claim: "query optimization in MM-DBMS should be
simpler ... there is a more definite ordering of preference."  This bench
stress-tests that ordering empirically: across a grid of join
configurations (sizes, duplicate levels, index availability) it runs
*every* applicable join method, then checks that the optimizer's choice
lands within a small factor of the measured best.
"""

import pytest

try:
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
    )
except ImportError:
    from harness import (
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
    )

from repro import Field, FieldType, MainMemoryDatabase
from repro.query.plan import JoinNode, ScanNode
from repro.workloads import DuplicateDistribution, RelationSpec, build_join_pair

BASE = scaled(20000)

#: (label, outer size, inner size, dup%, both relations value-indexed?)
GRID = [
    ("equal_keys_indexed", BASE, BASE, 0, True),
    ("equal_keys_bare", BASE, BASE, 0, False),
    ("small_outer_indexed", BASE // 10, BASE, 0, True),
    ("high_dups_indexed", BASE, BASE, 98, True),
    ("mid_dups_bare", BASE, BASE, 60, False),
]


def build_db(outer_values, inner_values, indexed):
    db = configure_engine(MainMemoryDatabase())
    for name, values in (("A", outer_values), ("B", inner_values)):
        db.create_relation(
            name,
            [Field("k", FieldType.INT), Field("v", FieldType.INT)],
            primary_key="k",
        )
        if indexed:
            db.create_index(name, f"{name}_v", "v", kind="ttree")
        for i, value in enumerate(values):
            db.insert(name, [i, value])
    return db


def applicable_methods(db, indexed):
    methods = ["hash", "sort_merge"]
    if indexed:
        methods += ["tree", "tree_merge"]
    return methods


def run_validation() -> SeriesCollector:
    series = SeriesCollector(
        "Optimizer validation — chosen method vs measured best "
        "(weighted op cost)",
        "scenario",
        ["chosen", "chosen_cost", "best", "best_cost", "ratio"],
    )
    for label, outer_n, inner_n, dups, indexed in GRID:
        dist = DuplicateDistribution(None)
        pair = build_join_pair(
            RelationSpec(outer_n, float(dups), dist),
            RelationSpec(inner_n, float(dups), dist),
            100.0,
            bench_rng(),
        )
        db = build_db(pair.outer, pair.inner, indexed)
        chosen_method = db.optimizer.choose_join_method(
            db.relation("A"), db.relation("B"), "v", "v"
        )
        costs = {}
        for method in applicable_methods(db, indexed):
            plan = JoinNode(ScanNode("A"), ScanNode("B"), "v", "v", method)
            __, counters, __ = measure(lambda p=plan: db.execute(p))
            costs[method] = counters.weighted_cost()
        best = min(costs, key=costs.get)
        chosen_cost = costs.get(chosen_method)
        if chosen_cost is None:
            # The optimizer may pick a method outside the applicable set
            # (never happens for this grid); measure it explicitly.
            plan = JoinNode(
                ScanNode("A"), ScanNode("B"), "v", "v", chosen_method
            )
            __, counters, __ = measure(lambda: db.execute(plan))
            chosen_cost = counters.weighted_cost()
        series.add(
            label,
            chosen=chosen_method,
            chosen_cost=round(chosen_cost),
            best=best,
            best_cost=round(costs[best]),
            ratio=round(chosen_cost / costs[best], 2),
        )
    return series


def test_optimizer_choices_near_best():
    series = run_validation()
    series.publish("optimizer_validation")
    for label, ratio in zip(series.xs(), series.column("ratio")):
        # The chosen method must be within 1.5x of the measured best —
        # the "definite ordering of preference" holding up in practice.
        assert ratio <= 1.5, (label, ratio)
    # And in most scenarios the optimizer picks the outright winner.
    exact = sum(
        1
        for chosen, best in zip(
            series.column("chosen"), series.column("best")
        )
        if chosen == best
    )
    assert exact >= len(GRID) - 1


def test_optimizer_validation_bench(benchmark):
    benchmark.pedantic(run_validation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_validation().show()
