"""Shared machinery for the join benchmarks (Graphs 4-10).

Each join test measures the four practical methods exactly as the paper
charges them:

* **Hash Join** — the Chained Bucket Hash build on the inner relation is
  *included* ("we always include the cost of building a hash table");
* **Tree Join** — probes a T-Tree on the inner relation that is assumed
  to already exist (build excluded);
* **Sort Merge** — array builds and quicksorts on both inputs *included*;
* **Tree Merge** — both T-Trees assumed to exist (build excluded); only
  the merge is measured.

Costs are weighted operation counts (see :mod:`benchmarks.harness`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

try:
    from benchmarks.harness import measure
except ImportError:
    from harness import measure

from repro.indexes import TTreeIndex
from repro.query.join import (
    hash_join,
    nested_loops_join,
    sort_merge_join,
    tree_join,
    tree_merge_join,
)

#: Column order used by every join series.
JOIN_METHODS = ["hash_join", "tree_join", "sort_merge", "tree_merge"]


def identity(x):
    return x


def build_ttree(values: Sequence[int]) -> TTreeIndex:
    """An 'already existing' T-Tree index over a join column."""
    tree = TTreeIndex(unique=False)
    for value in values:
        tree.insert(value)
    return tree


def run_join_methods(
    outer: Sequence[int],
    inner: Sequence[int],
    methods: Sequence[str] = JOIN_METHODS,
) -> Dict[str, Dict[str, float]]:
    """Execute each method; returns {method: {cost, seconds, results}}.

    Result sizes are cross-checked across methods — a mismatch means an
    implementation bug, so it raises immediately.
    """
    # Pre-built indexes are outside the measured region.
    inner_tree = build_ttree(inner) if (
        "tree_join" in methods or "tree_merge" in methods
    ) else None
    outer_tree = build_ttree(outer) if "tree_merge" in methods else None

    runners = {
        "hash_join": lambda: hash_join(outer, inner, identity, identity),
        "tree_join": lambda: tree_join(outer, identity, inner_tree),
        "sort_merge": lambda: sort_merge_join(outer, inner, identity, identity),
        "tree_merge": lambda: tree_merge_join(outer_tree, inner_tree),
        "nested_loops": lambda: nested_loops_join(
            outer, inner, identity, identity
        ),
    }
    stats: Dict[str, Dict[str, float]] = {}
    sizes = set()
    for method in methods:
        result, counters, seconds = measure(runners[method])
        stats[method] = {
            "cost": counters.weighted_cost(),
            "seconds": seconds,
            "results": len(result),
        }
        sizes.add(len(result))
    if len(sizes) > 1:
        observed = {m: s["results"] for m, s in stats.items()}
        raise AssertionError(
            f"join methods disagree on result size: {observed}"
        )
    return stats
