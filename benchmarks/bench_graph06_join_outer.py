"""Graph 6 — Join Test 3: vary the outer |R1| from 1-100% of |R2|.

|R2| fixed at 30,000 with an existing T-Tree index.  "The Tree Join
outperforms the others for small values of |R1|, beating even the Tree
Merge algorithm for the smallest |R1| values ...  Once |R1| increases to
about 60% of |R2|, the Hash Join algorithm becomes the better method
again because the speed of the hash lookup overcomes the initial cost of
building the hash table."
"""

import pytest

try:
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        crossover_points,
        scaled,
    )
    from benchmarks.join_common import JOIN_METHODS, run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, crossover_points, scaled
    from join_common import JOIN_METHODS, run_join_methods

from repro.workloads import RelationSpec, build_join_pair

INNER_N = scaled(30000)
PERCENTAGES = [1, 5, 10, 25, 50, 75, 100]


def make_pair(pct):
    outer_n = max(1, INNER_N * pct // 100)
    # Build with the larger relation as the generator's "outer" so that
    # selectivity semantics stay the paper's, then swap roles.
    pair = build_join_pair(
        RelationSpec(INNER_N), RelationSpec(outer_n), 100.0, bench_rng()
    )
    return pair.inner, pair.outer  # (R1 = small outer, R2 = big inner)


def run_graph6() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 6 — Join Test 3: vary |R1| as % of |R2|={INNER_N:,} "
        "(0% dups, 100% selectivity; weighted op cost)",
        "pct_of_inner",
        JOIN_METHODS,
    )
    for pct in PERCENTAGES:
        outer, inner = make_pair(pct)
        stats = run_join_methods(outer, inner)
        series.add(pct, **{m: round(stats[m]["cost"]) for m in JOIN_METHODS})
    return series


def test_graph06_series():
    series = run_graph6()
    series.publish("graph06_join_outer")
    tj = series.column("tree_join")
    hj = series.column("hash_join")
    # Small |R1|: the Tree Join wins — even against Tree Merge at the very
    # smallest sizes (a few probes beat scanning 30,000 inner tuples).
    assert tj[0] < hj[0]
    assert tj[0] < series.column("tree_merge")[0]
    # Large |R1|: the Hash Join overtakes the Tree Join.
    assert hj[-1] < tj[-1]
    # The crossover falls somewhere inside the sweep (paper: ~50-60%).
    crossings = crossover_points(tj, hj, PERCENTAGES)
    assert crossings, "expected a Tree Join / Hash Join crossover"
    assert 5 <= crossings[0] <= 100


def test_join_outer_bench(benchmark):
    outer, inner = make_pair(10)
    benchmark.pedantic(
        lambda: run_join_methods(outer, inner, ["tree_join"]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph6().show()
