"""Ablations of the T-Tree's design choices.

Two claims the paper makes without plots, verified by experiment:

* **Footnote 5** — "Moving the minimum element requires less total data
  movement than moving the maximum element.  Similarly ... borrowing the
  greatest lower bound from a leaf node requires less work than
  borrowing the least upper bound."  We run the same query mix under
  both spill policies and compare data movement.
* **Min/max occupancy slack** — "The minimum and maximum counts will
  usually differ by just a small amount, on the order of one or two
  items, which turns out to be enough to significantly reduce the need
  for tree rotations."  We sweep the slack and count rotations plus
  GLB/leaf traffic.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro.indexes import AVLTreeIndex, TTreeIndex
from repro.workloads import query_mix_operations, unique_keys

N_KEYS = scaled(30000)
N_OPS = scaled(30000)


def build_and_mix(tree):
    rng = bench_rng()
    keys = unique_keys(N_KEYS, rng)
    for key in keys:
        tree.insert(key)
    operations = list(
        query_mix_operations(keys, N_OPS, 40, 30, 30, bench_rng())
    )

    def run():
        for op, key in operations:
            if op == "search":
                tree.search(key)
            elif op == "insert":
                tree.insert(key)
            else:
                tree.delete(key)

    __, counters, __ = measure(run)
    return counters


def run_spill_ablation() -> SeriesCollector:
    series = SeriesCollector(
        f"Ablation — T-Tree spill policy (footnote 5); "
        f"{N_KEYS:,} keys, {N_OPS:,} ops (40/30/30 mix)",
        "spill",
        ["moves", "weighted_cost", "rotations"],
    )
    for spill in ("min", "max"):
        tree = TTreeIndex(node_size=10, min_slack=2, spill=spill)
        counters = build_and_mix(tree)
        series.add(
            spill,
            moves=counters.moves,
            weighted_cost=round(counters.weighted_cost()),
            rotations=tree.rotation_count,
        )
    return series


def test_spill_ablation():
    series = run_spill_ablation()
    series.publish("ablation_ttree_spill")
    moves = dict(zip(series.xs(), series.column("moves")))
    # Footnote 5 confirmed: the paper's min/GLB policy moves less data.
    assert moves["min"] < moves["max"]


def run_slack_ablation() -> SeriesCollector:
    series = SeriesCollector(
        f"Ablation — T-Tree min/max occupancy slack; "
        f"{N_KEYS:,} keys, {N_OPS:,} ops (40/30/30 mix)",
        "min_slack",
        ["rotations", "moves", "weighted_cost", "storage_factor"],
    )
    for slack in (0, 1, 2, 4, 8):
        tree = TTreeIndex(node_size=10, min_slack=slack)
        counters = build_and_mix(tree)
        series.add(
            slack,
            rotations=tree.rotation_count,
            moves=counters.moves,
            weighted_cost=round(counters.weighted_cost()),
            storage_factor=round(tree.storage_factor(), 3),
        )
    return series


def test_slack_ablation():
    series = run_slack_ablation()
    series.publish("ablation_ttree_slack")
    rotations = dict(zip(series.xs(), series.column("rotations")))
    storage = dict(zip(series.xs(), series.column("storage_factor")))
    # One or two items of slack cut rotations versus none...
    assert rotations[2] < rotations[0]
    # ...while storage utilisation degrades only mildly (the paper's
    # "storage utilization and insert/delete time ... traded off").
    assert storage[2] <= storage[8] * 1.2


def test_ttree_rotates_less_than_avl():
    """The headline structural claim: rotations are "done much less often
    than in an AVL tree due to the possibility of intra-node data
    movement"."""
    ttree = TTreeIndex(node_size=10)
    avl = AVLTreeIndex()
    build_and_mix(ttree)
    build_and_mix(avl)
    ratio = avl.rotation_count / max(1, ttree.rotation_count)
    assert ratio > 3


def test_spill_ablation_bench(benchmark):
    benchmark.pedantic(
        lambda: build_and_mix(TTreeIndex(node_size=10)),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_spill_ablation().show()
    run_slack_ablation().show()
