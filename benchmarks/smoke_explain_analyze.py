"""CI smoke: EXPLAIN ANALYZE and the zero-overhead observability contract.

Two guarantees are asserted over a Graph 2-style SQL mix (60% searches /
20% inserts / 20% deletes, the paper's representative workload ratio):

1. **EXPLAIN ANALYZE works in both states.**  Every SELECT shape of the
   mix renders an annotated span tree — estimated rows, actual rows, and
   the Section 3.1 counters per operator — whether observability is off
   (the statement self-activates a temporary tracer) or on.

2. **Zero overhead on the counted ops.**  The paper compiled its
   counters out for the timed runs; our analogue is that tracing must
   never change what the counters *measure*.  The same read-only query
   set is executed with observability off and then fully on (tracing +
   metrics), and the total operation counts must be identical — hooks
   attribute existing counts to spans, they never add counts.

Run directly (``python benchmarks/smoke_explain_analyze.py``) or via
pytest; CI runs it as a dedicated step.
"""

from __future__ import annotations

try:
    from benchmarks.harness import bench_rng, scaled
except ImportError:  # pragma: no cover - direct execution
    from harness import bench_rng, scaled

from repro.engine.database import MainMemoryDatabase
from repro.instrument import counters_scope
from repro.obs import ObservabilityConfig

_DEPARTMENTS = 20
_EMPLOYEES = scaled(3_000)  # 300 by default

#: The SELECT shapes of the mix (60%): scan, index lookups, range, join.
SELECTS = [
    "SELECT * FROM Employee WHERE Id = 42",
    "SELECT Name FROM Employee WHERE Age BETWEEN 30 AND 34",
    "SELECT Name FROM Employee WHERE Age = 21 OR Age = 63",
    "SELECT Employee.Name, Department.Name FROM Employee "
    "JOIN Department ON Dept_Id = Id WHERE Age > 60",
    "SELECT Department.Name, count(*) AS n FROM Employee "
    "JOIN Department ON Dept_Id = Id WHERE Age < 30 "
    "GROUP BY Department.Name",
    "SELECT DISTINCT Age FROM Employee WHERE Age < 25",
]

#: Six annotations every EXPLAIN ANALYZE line set must include.
REQUIRED_KEYS = (
    "est_rows=", "actual_rows=", "comparisons=", "moves=", "hashes=",
    "traversals=",
)


def _build_db() -> MainMemoryDatabase:
    rng = bench_rng()
    db = MainMemoryDatabase()
    db.sql("CREATE TABLE Department (Name TEXT, Id INT, PRIMARY KEY (Id))")
    db.sql(
        "CREATE TABLE Employee (Name TEXT, Id INT, Age INT, "
        "Dept_Id INT REFERENCES Department(Id), PRIMARY KEY (Id))"
    )
    for dept in range(_DEPARTMENTS):
        db.insert("Department", [f"Dept{dept:02d}", dept])
    for emp in range(_EMPLOYEES):
        db.insert(
            "Employee",
            [f"Emp{emp:05d}", emp, rng.randint(18, 65),
             rng.randrange(_DEPARTMENTS)],
        )
    db.sql("CREATE INDEX emp_age ON Employee (Age)")
    return db


def _run_mix(db: MainMemoryDatabase, rounds: int = 10) -> None:
    """Graph 2-style 60/20/20 mix: 6 selects, 2 inserts, 2 deletes per
    round (inserts and deletes pair up, so the data set is stable)."""
    next_id = _EMPLOYEES + 1_000_000
    for round_no in range(rounds):
        for text in SELECTS:
            db.sql(text)
        fresh = next_id + 2 * round_no
        db.sql(f"INSERT INTO Employee VALUES ('T1', {fresh}, 40, 1)")
        db.sql(f"INSERT INTO Employee VALUES ('T2', {fresh + 1}, 41, 2)")
        db.sql(f"DELETE FROM Employee WHERE Id = {fresh}")
        db.sql(f"DELETE FROM Employee WHERE Id = {fresh + 1}")


def _selects_total_ops(db: MainMemoryDatabase) -> int:
    with counters_scope() as counters:
        for text in SELECTS:
            db.sql(text)
    return counters.total()


def _assert_analyze_output(db: MainMemoryDatabase, label: str) -> None:
    for text in SELECTS:
        rendered = db.sql("EXPLAIN ANALYZE " + text)
        for key in REQUIRED_KEYS:
            assert key in rendered, (
                f"[{label}] missing {key!r} in EXPLAIN ANALYZE of "
                f"{text!r}:\n{rendered}"
            )
        assert rendered.startswith("Query"), rendered


def main() -> None:
    db = _build_db()

    # -- observability OFF -------------------------------------------------
    _run_mix(db)  # the mix itself works untraced (and warms stats caches)
    _assert_analyze_output(db, "obs off")
    ops_off = _selects_total_ops(db)

    # -- observability ON --------------------------------------------------
    obs = db.configure_observability(ObservabilityConfig())
    _run_mix(db)
    _assert_analyze_output(db, "obs on")
    ops_on = _selects_total_ops(db)

    assert ops_on == ops_off, (
        f"tracing changed the counted ops: off={ops_off} on={ops_on}"
    )

    # The mix was recorded: every statement shows up in the registry.
    exported = obs.export_prometheus()
    assert "queries_total" in exported
    assert "query_latency_seconds_bucket" in exported
    span = obs.last_query_span()
    assert span is not None and span.kind == "query"

    # -- back OFF: hooks return to no-ops ---------------------------------
    db.configure_observability(
        ObservabilityConfig(tracing=False, metrics=False)
    )
    ops_off_again = _selects_total_ops(db)
    assert ops_off_again == ops_off, (
        f"disabling observability changed the counted ops: "
        f"{ops_off} -> {ops_off_again}"
    )
    print(
        f"EXPLAIN ANALYZE smoke OK: {len(SELECTS)} query shapes, "
        f"total select ops {ops_off} identical with observability "
        "off/on/off"
    )


def test_explain_analyze_smoke():
    main()


if __name__ == "__main__":
    main()
