"""Ablation — B-Tree vs B+-Tree (footnote 3).

"Tests reported in [LeC85] showed that the B+ Tree uses more storage than
the B Tree and does not perform any better in main memory."  Both claims,
re-measured: storage factors and search cost across node sizes.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro.indexes import BPlusTreeIndex, BTreeIndex
from repro.workloads import unique_keys

N_KEYS = scaled(30000)
N_SEARCHES = scaled(30000)
NODE_SIZES = [6, 10, 20, 40, 80]


def run_bplus_ablation() -> SeriesCollector:
    rng = bench_rng()
    keys = unique_keys(N_KEYS, rng)
    probes = [keys[rng.randrange(len(keys))] for __ in range(N_SEARCHES)]
    series = SeriesCollector(
        f"Ablation — B-Tree vs B+-Tree (footnote 3); {N_KEYS:,} keys",
        "node_size",
        ["btree_search", "bplus_search", "btree_storage", "bplus_storage"],
    )
    for node_size in NODE_SIZES:
        btree = BTreeIndex(unique=True, node_size=node_size)
        bplus = BPlusTreeIndex(unique=True, node_size=node_size)
        for key in keys:
            btree.insert(key)
            bplus.insert(key)

        def probe(index):
            def run():
                for key in probes:
                    index.search(key)
            return run

        __, bt_counters, __ = measure(probe(btree))
        __, bp_counters, __ = measure(probe(bplus))
        series.add(
            node_size,
            btree_search=round(bt_counters.weighted_cost()),
            bplus_search=round(bp_counters.weighted_cost()),
            btree_storage=round(btree.storage_factor(), 2),
            bplus_storage=round(bplus.storage_factor(), 2),
        )
    return series


def test_footnote3():
    series = run_bplus_ablation()
    series.publish("ablation_bplus")
    for i, node_size in enumerate(NODE_SIZES):
        bt_storage = series.column("btree_storage")[i]
        bp_storage = series.column("bplus_storage")[i]
        # "The B+ Tree uses more storage than the B Tree" — the leaves
        # store keys alongside items and internal nodes duplicate
        # separators.
        assert bp_storage > bt_storage, node_size
        # "...and does not perform any better in main memory": search
        # costs within 25% of each other, never a clear B+ win.
        bt_search = series.column("btree_search")[i]
        bp_search = series.column("bplus_search")[i]
        assert bp_search > 0.75 * bt_search, node_size


def test_bplus_search_bench(benchmark):
    rng = bench_rng()
    keys = unique_keys(scaled(30000), rng)
    index = BPlusTreeIndex(unique=True, node_size=20)
    for key in keys:
        index.insert(key)
    probes = [keys[rng.randrange(len(keys))] for __ in range(1000)]

    def run():
        for key in probes:
            index.search(key)

    benchmark(run)


if __name__ == "__main__":
    run_bplus_ablation().show()
