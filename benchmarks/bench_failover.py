"""Replication cost benchmark: shipping overhead, failover, and heal.

Three questions about the warm-replica subsystem, swept over the size
of the post-checkpoint log suffix:

* **steady-state shipping** — how much slower is the commit+flush path
  with a replica attached (``ship_overhead_ratio``, replicated wall
  time over plain wall time for the identical insert workload);
* **failover** — how long ``demote()`` takes to replay the suffix,
  swap every partition image in, and rebuild indexes
  (``promote_seconds``);
* **online repair** — how long one quarantined partition takes to heal
  from the replica (``heal_seconds``).

``records_shipped`` is the deterministic gated column: it equals the
suffix size exactly, so the regression gate catches a shipper that
starts double-shipping (or silently dropping) records.  All ``*_
seconds`` / ``*_ratio`` columns are wall-clock and exempt from gating.
"""

from __future__ import annotations

import random
import time

try:
    from benchmarks.harness import SeriesCollector
except ImportError:  # pragma: no cover - direct execution
    from harness import SeriesCollector

from repro import Field, FieldType, MainMemoryDatabase
from repro.storage.partition import PartitionConfig

#: Base rows imaged by the bootstrap checkpoint.
N_BASE = 2_000
#: Post-checkpoint suffix sizes (records shipped / replayed).
SUFFIXES = [500, 1_000, 2_000]
DATA_SEED = 86_11_07
VALUE_SPACE = 64


def _build_db() -> MainMemoryDatabase:
    rng = random.Random(DATA_SEED)
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "R",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
        partition_config=PartitionConfig(slot_capacity=256),
    )
    for i in range(N_BASE):
        db.insert("R", [i, rng.randrange(VALUE_SPACE)])
    db.checkpoint()
    return db


def _insert_suffix(db: MainMemoryDatabase, count: int) -> None:
    rng = random.Random(DATA_SEED + 1)
    for i in range(count):
        db.insert("R", [N_BASE + i, rng.randrange(VALUE_SPACE)])


def _ship_overhead(count: int) -> float:
    """Replicated over plain wall time for the same insert+flush pass."""
    plain = _build_db()
    started = time.perf_counter()
    _insert_suffix(plain, count)
    plain.propagate_log()
    plain_seconds = time.perf_counter() - started

    replicated = _build_db()
    replicated.configure_replication(channel="inline")
    started = time.perf_counter()
    _insert_suffix(replicated, count)
    replicated.propagate_log()
    replicated.replication.shipper.flush()
    replicated_seconds = time.perf_counter() - started
    replicated.stop_replication()
    return replicated_seconds / max(plain_seconds, 1e-9)


def _failover(count: int):
    """Promote after a ``count``-record suffix; returns (stats, shipper)."""
    db = _build_db()
    db.configure_replication(channel="inline")
    _insert_suffix(db, count)
    db.crash()
    promotion = db.demote(reason="benchmark")
    rows = len(db.select("R"))
    assert rows == N_BASE + count, (rows, count)
    state = db.replication.shipper.state()
    db.stop_replication()
    return promotion, state


def _heal(count: int):
    """Quarantine one partition, heal it from the replica; the stats."""
    db = _build_db()
    db.configure_replication(channel="inline")
    _insert_suffix(db, count)
    disk = db.recovery.disk
    framed = bytearray(disk._images[("R", 0)])
    framed[-1] ^= 0xFF
    disk._images[("R", 0)] = bytes(framed)
    db.crash()
    db.recover(partial=True)
    heal = db.heal_partitions()
    assert heal.partitions_healed == 1, heal
    assert db.quarantine_report() == {}
    assert len(db.select("R")) == N_BASE + count
    db.stop_replication()
    return heal


def run_failover_benchmark() -> SeriesCollector:
    series = SeriesCollector(
        "Warm-replica cost: shipping, failover, online heal",
        "suffix_records",
        [
            "records_shipped",
            "promote_seconds",
            "partitions_restored",
            "heal_seconds",
            "ship_overhead_ratio",
        ],
    )
    for count in SUFFIXES:
        promotion, shipper = _failover(count)
        # Suffixes past the lag bound auto-ship mid-stream; the rest
        # replays at promotion.  Every record ships exactly once.
        assert shipper["records_shipped"] == count, shipper
        assert shipper["lag_records"] == 0, shipper
        heal = _heal(count)
        series.add(
            count,
            records_shipped=shipper["records_shipped"],
            promote_seconds=round(promotion.elapsed_seconds, 6),
            partitions_restored=promotion.partitions_restored,
            heal_seconds=round(heal.elapsed_seconds, 6),
            ship_overhead_ratio=round(_ship_overhead(count), 3),
        )
    return series


def test_failover_benchmark():
    series = run_failover_benchmark()
    series.publish("failover")
    # Shipping is one apply per record: the overhead cannot explode.
    for ratio in series.column("ship_overhead_ratio"):
        assert ratio < 10.0, series.rows()


if __name__ == "__main__":
    test_failover_benchmark()
