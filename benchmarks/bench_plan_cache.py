"""Query reuse benchmark: repeated statements with and without caching.

A mixed read-only workload — ten distinct query shapes spanning point
lookups, range scans, OR multi-lookups, an FK join, aggregation,
DISTINCT, ORDER BY + LIMIT, and a prepared statement — runs many times
per shape.  The baseline pass re-lexes, re-parses, re-optimizes, and
re-executes every statement; the cached pass installs the reuse
subsystem (plan cache + versioned result cache) and runs the *same*
workload on the *same* data.

Since the data is read-only, every repetition after the first hits the
statement-level result cache; its honest cost (key normalization, cache
probes, version checks, and the defensive row copies, all recorded as
counter events/moves) is what the "cached" column shows.  The ratio is
the paper-style payoff: Dursun et al. report order-of-magnitude wins for
exactly this kind of repeat-heavy workload.
"""

from __future__ import annotations

try:
    from benchmarks.harness import (
        SPANS_MODE,
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
        serialize_spans,
    )
except ImportError:  # pragma: no cover - direct execution
    from harness import (
        SPANS_MODE,
        SeriesCollector,
        bench_rng,
        configure_engine,
        measure,
        scaled,
        serialize_spans,
    )

from repro.cache import CacheConfig
from repro.engine.database import MainMemoryDatabase

#: Executions per query shape (10 shapes → 1000 statement executions).
REPEATS = 100

_DEPARTMENTS = 50
_EMPLOYEES = scaled(20_000)  # 2,000 by default


def _build_db() -> MainMemoryDatabase:
    rng = bench_rng()
    db = configure_engine(MainMemoryDatabase())
    db.sql(
        "CREATE TABLE Department (Name TEXT, Id INT, Floor INT, "
        "PRIMARY KEY (Id))"
    )
    db.sql(
        "CREATE TABLE Employee (Name TEXT, Id INT, Age INT, "
        "Dept_Id INT REFERENCES Department(Id), PRIMARY KEY (Id))"
    )
    for dept in range(_DEPARTMENTS):
        db.insert("Department", [f"Dept{dept:03d}", dept, rng.randint(1, 9)])
    for emp in range(_EMPLOYEES):
        db.insert(
            "Employee",
            [
                f"Emp{emp:05d}",
                emp,
                rng.randint(18, 65),
                rng.randrange(_DEPARTMENTS),
            ],
        )
    db.sql("CREATE INDEX emp_age ON Employee (Age)")
    db.sql("CREATE INDEX emp_name ON Employee (Name) USING chained_hash")
    return db


def _workload(db: MainMemoryDatabase):
    """Run the ten query shapes once; returns materialized results."""
    lookup = db.prepare("SELECT Name FROM Employee WHERE Id = ?")
    statements = [
        # point lookup through the primary T-Tree
        "SELECT * FROM Employee WHERE Id = 1234",
        # hash-index equality
        "SELECT Age FROM Employee WHERE Name = 'Emp00042'",
        # T-Tree range scan
        "SELECT Name FROM Employee WHERE Age BETWEEN 30 AND 33",
        # OR over one indexed field -> multi-lookup union
        "SELECT Name FROM Employee WHERE Age = 21 OR Age = 63",
        # FK (precomputed) join with a selective outer predicate
        "SELECT Employee.Name, Department.Name FROM Employee "
        "JOIN Department ON Dept_Id = Id WHERE Age > 63",
        # filtered aggregation
        "SELECT Age, count(*) AS n FROM Employee WHERE Age >= 60 GROUP BY Age",
        # duplicate elimination
        "SELECT DISTINCT Age FROM Employee WHERE Age < 25",
        # sort + limit over a selective range
        "SELECT Name FROM Employee WHERE Age > 60 ORDER BY Name LIMIT 10",
        # second relation point lookup
        "SELECT Name FROM Department WHERE Id = 17",
    ]
    outputs = [db.sql(text).materialize() for text in statements]
    # prepared-statement shape: five distinct bindings, cycled
    for key in (7, 77, 777, 1111, 1777):
        outputs.append(lookup.execute(key).materialize())
    return outputs


def run_plan_cache_benchmark(repeats: int = REPEATS):
    """(series, summary, spans) for the cached-vs-uncached comparison;
    ``spans`` is a serialized per-operator breakdown when
    :data:`SPANS_MODE` is on, else None."""
    db = _build_db()

    def run_many():
        final = None
        for __ in range(repeats):
            final = _workload(db)
        return final

    baseline_rows, baseline, baseline_secs = measure(run_many)

    db.configure_cache(CacheConfig())
    cached_rows, cached, cached_secs = measure(run_many)

    if cached_rows != baseline_rows:
        raise AssertionError(
            "cached workload returned different rows than uncached"
        )

    series = SeriesCollector(
        f"Query reuse: {repeats} executions of 10 query shapes "
        f"(|Employee|={_EMPLOYEES})",
        "mode",
        ["total_ops", "comparisons", "moves", "hashes", "seconds"],
    )
    for mode, counters, seconds in (
        ("uncached", baseline, baseline_secs),
        ("cached", cached, cached_secs),
    ):
        series.add(
            mode,
            total_ops=counters.total(),
            comparisons=counters.comparisons,
            moves=counters.moves,
            hashes=counters.hashes,
            seconds=seconds,
        )
    ratio = baseline.total() / max(1, cached.total())
    summary = {
        "repeats": repeats,
        "ratio_total_ops": round(ratio, 2),
        "uncached_counters": baseline.as_dict(),
        "cached_counters": cached.as_dict(),
        "cache_stats": db.cache_stats(),
    }
    spans = _collect_spans(db) if SPANS_MODE else None
    return series, summary, spans


def _collect_spans(db: MainMemoryDatabase):
    """One traced pass over the workload → serialized root spans.

    Runs *after* the timed passes so tracing overhead never touches the
    published numbers; observability is torn down again before returning.
    """
    from repro.obs import ObservabilityConfig

    obs = db.configure_observability(ObservabilityConfig(metrics=False))
    try:
        _workload(db)
        return serialize_spans(obs.recent_spans())
    finally:
        db.configure_observability(
            ObservabilityConfig(tracing=False, metrics=False)
        )


def test_plan_cache_speedup():
    series, summary, spans = run_plan_cache_benchmark()
    series.publish("plan_cache", extra=summary, spans=spans)
    print(f"total-operation reduction: {summary['ratio_total_ops']}x")
    assert summary["ratio_total_ops"] >= 5.0, summary


if __name__ == "__main__":
    test_plan_cache_speedup()
