"""Graph 10 — the nested loops join, plotted alone on a log scale.

"Due to the fact that its performance was usually several orders of
magnitude worse than the other join methods, we were unable to present
them on the same graphs ...  nested loops join should simply never be
considered as a practical join method for a main memory DBMS."
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
    from benchmarks.join_common import run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled
    from join_common import run_join_methods

from repro.workloads import RelationSpec, build_join_pair

#: The paper varies |R1| = |R2| from 1,000 to 20,000.
CARDINALITIES = [scaled(n) for n in (1000, 2500, 5000, 10000, 20000)]


def make_pair(n):
    return build_join_pair(RelationSpec(n), RelationSpec(n), 100.0, bench_rng())


def run_graph10() -> SeriesCollector:
    series = SeriesCollector(
        "Graph 10 — Nested Loops Join (|R1| = |R2|; weighted op cost)",
        "tuples",
        ["nested_loops", "hash_join", "ratio"],
    )
    for n in CARDINALITIES:
        pair = make_pair(n)
        stats = run_join_methods(
            pair.outer, pair.inner, ["nested_loops", "hash_join"]
        )
        nl = stats["nested_loops"]["cost"]
        hj = stats["hash_join"]["cost"]
        series.add(
            n,
            nested_loops=round(nl),
            hash_join=round(hj),
            ratio=round(nl / hj, 1),
        )
    return series


def test_graph10_series():
    series = run_graph10()
    series.publish("graph10_nested_loops")
    nl = series.column("nested_loops")
    ratios = series.column("ratio")
    # Quadratic growth: 4x the data costs ~16x the work.
    assert nl[-1] > 10 * nl[1]  # 2,000 -> 8x tuples => ~64x cost
    # Orders of magnitude worse than a practical method, and the gap
    # widens with size.
    assert ratios[0] > 5
    assert ratios[-1] > 50
    assert ratios == sorted(ratios)


def test_nested_loops_bench(benchmark):
    pair = make_pair(scaled(2500))
    benchmark.pedantic(
        lambda: run_join_methods(pair.outer, pair.inner, ["nested_loops"]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph10().show()
