"""Graph 8 — Join Test 5: vary duplicate percentage, uniform distribution.

Same as Test 4 but with uniformly distributed duplicates, so the join
output grows far more slowly: "the Tree Merge algorithm remained the best
method until the duplicate percentage exceeded about 97 percent ...  Once
the duplicate percentage became high enough to cause a high output join
(at about 97 percent), Sort Merge again became the fastest join method."
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
    from benchmarks.join_common import JOIN_METHODS, run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled
    from join_common import JOIN_METHODS, run_join_methods

from repro.workloads import DuplicateDistribution, RelationSpec, build_join_pair

N = scaled(20000)
DUP_PERCENTAGES = [0, 25, 50, 75, 90, 97, 99]


def make_pair(dup_pct):
    dist = DuplicateDistribution(None)  # exactly uniform
    return build_join_pair(
        RelationSpec(N, dup_pct, dist),
        RelationSpec(N, dup_pct, dist),
        100.0,
        bench_rng(),
    )


def run_graph8() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 8 — Join Test 5: vary duplicates, uniform dist. "
        f"(|R|={N:,}; weighted op cost)",
        "dup_pct",
        JOIN_METHODS + ["result_size"],
    )
    for dup_pct in DUP_PERCENTAGES:
        pair = make_pair(dup_pct)
        stats = run_join_methods(pair.outer, pair.inner)
        cells = {m: round(stats[m]["cost"]) for m in JOIN_METHODS}
        cells["result_size"] = stats["hash_join"]["results"]
        series.add(dup_pct, **cells)
    return series


def test_graph08_series():
    series = run_graph8()
    series.publish("graph08_join_dups_uniform")
    sm = series.column("sort_merge")
    tm = series.column("tree_merge")
    # Tree Merge remains the best method through moderate duplicate
    # percentages (paper: until ~97%)...
    for i, pct in enumerate(DUP_PERCENTAGES):
        if pct <= 90:
            assert tm[i] < sm[i], pct
            assert tm[i] < series.column("hash_join")[i], pct
    # ...but at the extreme end the high-output join flips it to Sort
    # Merge.
    assert sm[-1] < tm[-1]
    # The uniform output grows much more slowly than the skewed one: at
    # 90% duplicates it is within ~15x the input, not hundreds of times.
    sizes = series.column("result_size")
    assert sizes[DUP_PERCENTAGES.index(90)] < 15 * N


def test_join_dups_uniform_bench(benchmark):
    pair = make_pair(75)
    benchmark.pedantic(
        lambda: run_join_methods(pair.outer, pair.inner, ["tree_merge"]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph8().show()
