"""Graph 1 — index search cost vs node size.

Paper setup: every structure filled with 30,000 unique elements (indices
hold pointers only), then searched.  Expected shape:

* Chained Bucket Hash: fastest, flat;
* small-node hashing methods all equivalent; Modified Linear Hashing
  degrades steepest as chains grow;
* AVL slightly cheaper than T-Tree (the T-Tree pays a binary search of
  the final node), both cheaper than the array's pure binary search,
  B-Tree worst of the order-preserving structures.
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
    from benchmarks.index_common import (
        NODE_SIZED,
        NODE_SIZES,
        STRUCTURES,
        build_index,
        load_index,
    )
except ImportError:  # direct execution: python benchmarks/bench_graph01_...
    from harness import SeriesCollector, bench_rng, measure, scaled
    from index_common import (
        NODE_SIZED,
        NODE_SIZES,
        STRUCTURES,
        build_index,
        load_index,
    )

from repro.workloads import unique_keys

#: 30,000 unique elements in the paper; scaled by default.
N_KEYS = scaled(30000)
N_SEARCHES = scaled(30000)


def search_workload(index, probes):
    def run():
        for key in probes:
            index.search(key)
    return run


def run_graph1() -> SeriesCollector:
    rng = bench_rng()
    keys = unique_keys(N_KEYS, rng)
    probes = [keys[rng.randrange(len(keys))] for __ in range(N_SEARCHES)]
    series = SeriesCollector(
        f"Graph 1 — Index Search ({N_KEYS:,} elements, "
        f"{N_SEARCHES:,} searches; weighted op cost)",
        "node_size",
        STRUCTURES,
    )
    flat_cost = {}
    for kind in STRUCTURES:
        if kind in NODE_SIZED:
            continue
        index = load_index(build_index(kind, 0, N_KEYS), keys)
        __, counters, __ = measure(search_workload(index, probes))
        flat_cost[kind] = round(counters.weighted_cost())
    for node_size in NODE_SIZES:
        cells = {}
        for kind in STRUCTURES:
            if kind in NODE_SIZED:
                index = load_index(build_index(kind, node_size, N_KEYS), keys)
                __, counters, __ = measure(search_workload(index, probes))
                cells[kind] = round(counters.weighted_cost())
            else:
                cells[kind] = flat_cost[kind]
        series.add(node_size, **cells)
    return series


def test_graph01_series():
    """Regenerate the Graph 1 series and check its shape."""
    series = run_graph1()
    series.publish("graph01_index_search")
    mid = NODE_SIZES.index(20)
    cbh = series.column("chained_hash")
    ttree = series.column("ttree")
    avl = series.column("avl")
    btree = series.column("btree")
    mlh = series.column("modified_linear_hash")
    # Chained bucket hashing is the fastest method at moderate node sizes.
    assert cbh[mid] < ttree[mid]
    assert cbh[mid] < btree[mid]
    # AVL <= T-Tree <= B-Tree among the tree structures (paper's order).
    assert avl[mid] <= ttree[mid] * 1.1
    assert ttree[mid] < btree[mid]
    # MLH cost rises with average chain length.
    assert mlh[-1] > mlh[0] * 2


@pytest.mark.parametrize("kind", ["ttree", "avl", "btree", "chained_hash"])
def test_search_microbench(benchmark, kind):
    """Wall-clock micro-benchmark of 1,000 searches per structure."""
    rng = bench_rng()
    keys = unique_keys(scaled(30000), rng)
    index = load_index(build_index(kind, 20, len(keys)), keys)
    probes = [keys[rng.randrange(len(keys))] for __ in range(1000)]
    benchmark(search_workload(index, probes))


if __name__ == "__main__":
    run_graph1().show()
