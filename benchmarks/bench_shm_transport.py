"""Pickle vs. shared-memory morsel transport across worker counts.

Runs two workloads through the morsel-parallel batch engine under both
transports (``pickle`` and ``shm``, see DESIGN.md section 3.13):

* the Graph-2-style 60/20/20 query mix (the same plan trees as
  ``bench_vectorized.py``);
* a **wide-probe join** — a high fan-out hash join whose probe dispatch
  and joined result rows dwarf the fixed per-morsel overhead, the
  workload the shm transport exists for.

Three properties are asserted:

* **determinism** — every transport x workers combination produces
  identical result rows and identical merged Section 3.1 counter
  totals (``deref_saved_traversals`` excluded, as everywhere);
* **pipe-byte reduction** — on the wide-probe workload the shm
  transport must move >= 5x fewer coordinator pipe bytes
  (dispatch + result) than pickle at every worker count;
* **speedup** — shm must not be slower than pickle at the top worker
  count on the wide-probe workload.  Wall-clock on shared CI hosts is
  noisy, so the gate is informational unless ``REPRO_REQUIRE_SPEEDUP``
  is set (matching ``bench_parallel.py``).

Byte totals are measured in a separate untimed pass
(``scheduler.measure_bytes`` pickles every payload to count it, which
would distort the timed rounds).
"""

from __future__ import annotations

import os

try:
    from benchmarks.bench_vectorized import (
        N_INNER,
        N_OUTER,
        N_QUERIES,
        build_db,
        query_mix,
        run_mix,
    )
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        measure,
        scaled,
    )
except ImportError:  # pragma: no cover - direct execution
    from bench_vectorized import (
        N_INNER,
        N_OUTER,
        N_QUERIES,
        build_db,
        query_mix,
        run_mix,
    )
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro import Field, FieldType
from repro.instrument import counters_scope
from repro.query.parallel import fork_available, shm
from repro.query.plan import JoinNode, ScanNode

TIMING_ROUNDS = 3
TRANSPORTS = ("pickle", "shm") if shm.available() else ("pickle",)
WORKER_SWEEP = (2, 4)
REQUIRED_BYTE_REDUCTION = 5.0

#: Wide-probe workload: a small value space gives the join a high
#: fan-out, so result traffic dominates; the probe side is large enough
#: to decompose into many morsels.
N_WIDE_PROBE = scaled(30000)  # 3,000 by default
N_WIDE_BUILD = scaled(2000)  # 200 by default
WIDE_VALUE_SPACE = 20
MORSEL_SIZE = max(256, N_OUTER // 8)
SHM_THRESHOLD = 64


def _pool_mode() -> str:
    return "process" if fork_available() else "inline"


def speedup_gate_active() -> bool:
    return os.environ.get("REPRO_REQUIRE_SPEEDUP", "") not in ("", "0")


def add_wide_probe(db):
    """Register the wide-probe pair alongside the mix tables."""
    rng = bench_rng()
    db.create_relation(
        "WideR",
        [Field("Id", FieldType.INT), Field("K", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "WideS",
        [Field("Id", FieldType.INT), Field("K", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_WIDE_PROBE):
        db.insert("WideR", [i, rng.randrange(WIDE_VALUE_SPACE)])
    for i in range(N_WIDE_BUILD):
        db.insert("WideS", [i, rng.randrange(WIDE_VALUE_SPACE)])


def wide_probe_plan():
    return JoinNode(ScanNode("WideR"), ScanNode("WideS"), "K", "K", "hash")


def _configure(db, transport, workers):
    db.configure_execution(
        engine="batch",
        workers=workers,
        morsel_size=MORSEL_SIZE,
        pool=_pool_mode(),
        transport=transport,
        shm_threshold_rows=SHM_THRESHOLD,
    )


def _counters_key(snapshot) -> dict:
    counts = snapshot.as_dict()
    counts.pop("deref_saved_traversals", None)
    return counts


def _run_all(db, plans):
    """Rows + merged counters for one pass over ``plans``."""
    with counters_scope() as scope:
        rows = [db.executor.execute(plan).rows() for plan in plans]
    return rows, _counters_key(scope.snapshot())


def _pipe_bytes(db, plans):
    """Dispatch/result byte totals for one untimed measured pass."""
    scheduler = db.executor.scheduler
    scheduler.measure_bytes = True
    before_dispatch = scheduler.stats["dispatch_bytes"]
    before_result = scheduler.stats["result_bytes"]
    for plan in plans:
        db.executor.execute(plan)
    scheduler.measure_bytes = False
    return (
        scheduler.stats["dispatch_bytes"] - before_dispatch,
        scheduler.stats["result_bytes"] - before_result,
    )


def main() -> None:
    db = build_db()
    add_wide_probe(db)
    mix_plans = query_mix()
    wide = [wide_probe_plan()]

    series = SeriesCollector(
        f"Morsel transport pickle vs shm - 60/20/20 mix + wide-probe "
        f"join, |Orders|={N_OUTER}, |Parts|={N_INNER}, "
        f"|WideR|={N_WIDE_PROBE}, |WideS|={N_WIDE_BUILD}, "
        f"morsel={MORSEL_SIZE}, threshold={SHM_THRESHOLD}",
        "transport@workers",
        [
            "mix_seconds",
            "wide_seconds",
            "wide_pipe_ratio",
            "cost",
            "comparisons",
            "hashes",
        ],
    )

    reference = None
    wide_seconds = {}
    wide_bytes = {}
    # Raw byte totals go in ``extra``, not gated columns: pickled
    # descriptor sizes embed segment names (and thus pid digits), so
    # they jitter by a few bytes run to run.
    byte_detail = {}
    latencies = {}
    for transport in TRANSPORTS:
        for workers in WORKER_SWEEP:
            label = f"{transport}@{workers}"
            _configure(db, transport, workers)

            # Correctness pass: rows and counters must match the first
            # configuration bit-for-bit.
            mix_rows, mix_counts = _run_all(db, mix_plans)
            wide_rows, wide_counts = _run_all(db, wide)
            key = (mix_rows, mix_counts, wide_rows, wide_counts)
            if reference is None:
                reference = key
            else:
                assert key[0] == reference[0] and key[2] == reference[2], (
                    f"{label} changed result rows"
                )
                assert key[1] == reference[1] and key[3] == reference[3], (
                    f"{label} changed merged counter totals"
                )

            # Byte pass (untimed: measuring pickles every payload).
            dispatch_bytes, result_bytes = _pipe_bytes(db, wide)
            wide_bytes[(transport, workers)] = dispatch_bytes + result_bytes
            byte_detail[label] = {
                "dispatch_bytes": dispatch_bytes,
                "result_bytes": result_bytes,
            }
            pipe_ratio = round(
                wide_bytes[("pickle", workers)]
                / max(1, wide_bytes[(transport, workers)]),
                2,
            )

            # Timed pass.
            mix_best = None
            counters = None
            samples = latencies.setdefault(label, [])
            for _ in range(TIMING_ROUNDS):
                _, snap, elapsed = measure(lambda: run_mix(db, mix_plans))
                samples.append(elapsed)
                if mix_best is None or elapsed < mix_best:
                    mix_best, counters = elapsed, snap
            wide_best = None
            wide_samples = latencies.setdefault(f"wide:{label}", [])
            for _ in range(TIMING_ROUNDS):
                _, __, elapsed = measure(lambda: run_mix(db, wide))
                wide_samples.append(elapsed)
                if wide_best is None or elapsed < wide_best:
                    wide_best = elapsed
            wide_seconds[(transport, workers)] = wide_best

            series.add(
                label,
                mix_seconds=mix_best,
                wide_seconds=wide_best,
                wide_pipe_ratio=pipe_ratio,
                cost=counters.weighted_cost(),
                comparisons=counters.comparisons,
                hashes=counters.hashes,
            )
    db.configure_execution(engine="tuple")

    # The payoff gates.
    reductions = {}
    if "shm" in TRANSPORTS:
        for workers in WORKER_SWEEP:
            pickle_total = wide_bytes[("pickle", workers)]
            shm_total = wide_bytes[("shm", workers)]
            reduction = pickle_total / max(1, shm_total)
            reductions[str(workers)] = round(reduction, 2)
            assert reduction >= REQUIRED_BYTE_REDUCTION, (
                f"wide-probe pipe bytes at {workers} workers: pickle "
                f"{pickle_total} vs shm {shm_total} is only "
                f"{reduction:.2f}x, need {REQUIRED_BYTE_REDUCTION}x"
            )

    gate = speedup_gate_active() and "shm" in TRANSPORTS
    top = WORKER_SWEEP[-1]
    speedup = None
    if "shm" in TRANSPORTS:
        speedup = round(
            wide_seconds[("pickle", top)] / wide_seconds[("shm", top)], 3
        )

    series.publish(
        "shm_transport",
        extra={
            "wide_pipe_bytes": byte_detail,
            "pipe_byte_reduction_ratio": reductions,
            "required_byte_reduction": REQUIRED_BYTE_REDUCTION,
            "wide_speedup_ratio_at_top": speedup,
            "speedup_gate_enforced": gate,
            "pool": _pool_mode(),
            "morsel_size": MORSEL_SIZE,
            "shm_threshold_rows": SHM_THRESHOLD,
            "queries": N_QUERIES,
            "wide_probe": {
                "probe_rows": N_WIDE_PROBE,
                "build_rows": N_WIDE_BUILD,
                "value_space": WIDE_VALUE_SPACE,
            },
        },
        config={"engine": "batch", "workers": list(WORKER_SWEEP)},
        latencies=latencies,
    )
    print(
        f"wide-probe pipe-byte reduction: {reductions} "
        f"(gate: >= {REQUIRED_BYTE_REDUCTION}x); "
        f"shm speedup at {top} workers: {speedup} "
        f"({'ENFORCED' if gate else 'informational'})"
    )
    if gate:
        assert speedup is not None and speedup >= 1.0, (
            f"shm transport is {speedup}x vs pickle at {top} workers "
            f"(must not be slower with REPRO_REQUIRE_SPEEDUP set)"
        )

    # Segment hygiene: nothing may outlive the run.
    assert shm.arena().active_segments() == 0, "leaked shm segments"
    residue = [
        f for f in os.listdir("/dev/shm") if f.startswith("repro-")
    ] if os.path.isdir("/dev/shm") else []
    assert residue == [], f"leaked /dev/shm entries: {residue}"


if __name__ == "__main__":
    main()
