"""Table 1 — Index Study Results: derive the paper's four-level ratings.

The paper condenses Graphs 1-2 and the storage study into a table of
poor / fair / good / great ratings per structure for Search, Update, and
Storage Cost.  This bench re-derives the ratings from our own
measurements: each structure is rated at its best node size, relative to
the best performer in the category.

Paper's Table 1:

    =====================  ======  ======  ============
    Structure              Search  Update  Storage Cost
    =====================  ======  ======  ============
    Array                  good    poor    good
    AVL Tree               good    fair    poor
    B Tree                 fair    good    good
    T Tree                 good    good    good
    Chained Bucket Hash    great   great   fair
    Extendible Hash        great   great   poor
    Linear Hash            great   poor    good
    Mod. Linear Hash       great   great   fair/good
    =====================  ======  ======  ============
"""

try:
    from benchmarks.harness import bench_rng, measure, print_table, save_result, scaled, format_table
    from benchmarks.index_common import (
        NODE_SIZED,
        STRUCTURES,
        build_index,
        load_index,
    )
except ImportError:
    from harness import bench_rng, measure, print_table, save_result, scaled, format_table
    from index_common import (
        NODE_SIZED,
        STRUCTURES,
        build_index,
        load_index,
    )

from repro.workloads import query_mix_operations, unique_keys

N_KEYS = scaled(30000)
N_OPS = scaled(30000)

#: Node sizes each structure is evaluated at (its own sweet spot, the way
#: the paper's summary judges each structure at the sizes that favour it).
BEST_NODE_SIZE = {
    "array": 0,
    "avl": 0,
    "btree": 20,
    "ttree": 20,
    "chained_hash": 0,
    "extendible_hash": 6,
    "linear_hash": 6,
    "modified_linear_hash": 2,
}

#: The paper's expected ratings, used as the shape check.
PAPER_RATINGS = {
    "array": ("good", "poor", "good"),
    "avl": ("good", "fair", "poor"),
    "btree": ("fair", "good", "good"),
    "ttree": ("good", "good", "good"),
    "chained_hash": ("great", "great", "fair"),
    "extendible_hash": ("great", "great", "poor"),
    "linear_hash": ("great", "poor", "good"),
    "modified_linear_hash": ("great", "great", "fair/good"),
}

RATING_ORDER = ["great", "good", "fair", "poor"]


def _rate(value, best, thresholds=(1.5, 3.0, 10.0)):
    """Four-level rating of ``value`` relative to the category's best.

    The thresholds were calibrated once against the paper's own Table 1
    so that the measured costs reproduce its qualitative levels; they are
    reported alongside the ratings, not hidden.
    """
    ratio = value / best if best else 1.0
    if ratio <= thresholds[0]:
        return "great"
    if ratio <= thresholds[1]:
        return "good"
    if ratio <= thresholds[2]:
        return "fair"
    return "poor"


#: Search: hashes ~1x, trees ~3-4x, B-Tree just under 4x -> fair.
SEARCH_THRESHOLDS = (1.5, 3.8, 12.0)
#: Update: CBH/MLH/EH ~1-2x, T-Tree ~4x, AVL/B-Tree ~6x, array >>.
UPDATE_THRESHOLDS = (2.0, 5.9, 20.0)


def _rate_storage(factor):
    """Storage rating on the paper's scale (array = 1.0 is the floor)."""
    if factor <= 1.2:
        return "great"
    if factor <= 1.8:
        return "good"
    if factor <= 2.6:
        return "fair"
    return "poor"


def measure_structure(kind, keys, searches, updates):
    node_size = BEST_NODE_SIZE[kind]
    index = load_index(build_index(kind, node_size, N_KEYS), keys)

    def run_searches():
        for key in searches:
            index.search(key)

    __, search_counters, __ = measure(run_searches)

    def run_updates():
        for op, key in updates:
            if op == "insert":
                index.insert(key)
            elif op == "delete":
                index.delete(key)

    # The array's quadratic updates make the full stream painfully slow;
    # sample it and extrapolate (the rating saturates at "poor" anyway).
    if kind == "array":
        sample = updates[: max(50, len(updates) // 50)]

        def run_sampled():
            for op, key in sample:
                if op == "insert":
                    index.insert(key)
                elif op == "delete":
                    index.delete(key)

        __, update_counters, __ = measure(run_sampled)
        scale = len(updates) / len(sample)
        update_cost = update_counters.weighted_cost() * scale
    else:
        __, update_counters, __ = measure(run_updates)
        update_cost = update_counters.weighted_cost()
    return (
        search_counters.weighted_cost(),
        update_cost,
        index.storage_factor(),
    )


def run_table1():
    rng = bench_rng()
    keys = unique_keys(N_KEYS, rng)
    searches = [keys[rng.randrange(len(keys))] for __ in range(N_OPS)]
    updates = [
        (op, key)
        for op, key in query_mix_operations(keys, N_OPS, 0, 50, 50, bench_rng())
    ]
    raw = {
        kind: measure_structure(kind, keys, searches, updates)
        for kind in STRUCTURES
    }
    best_search = min(v[0] for v in raw.values())
    best_update = min(v[1] for v in raw.values())
    ratings = {}
    for kind, (search_cost, update_cost, storage_factor) in raw.items():
        ratings[kind] = (
            _rate(search_cost, best_search, SEARCH_THRESHOLDS),
            _rate(update_cost, best_update, UPDATE_THRESHOLDS),
            _rate_storage(storage_factor),
        )
    return raw, ratings


def test_table1_ratings():
    raw, ratings = run_table1()
    rows = [
        (kind, [*ratings[kind],
                round(raw[kind][0]), round(raw[kind][1]),
                round(raw[kind][2], 2)])
        for kind in STRUCTURES
    ]
    text = format_table(
        "Table 1 — Index Study Results (measured)",
        "structure",
        ["search", "update", "storage", "search_cost", "update_cost",
         "storage_factor"],
        rows,
    )
    print()
    print(text)
    print()
    save_result("table1_ratings", text)

    def level(rating):
        # "fair/good" counts as fair for comparisons.
        return RATING_ORDER.index(rating.split("/")[0])

    # Headline shape checks against the paper's table:
    # 1. All four hash methods rate 'great' on search.
    for kind in ("chained_hash", "extendible_hash", "linear_hash",
                 "modified_linear_hash"):
        assert ratings[kind][0] == "great", (kind, ratings[kind])
    # 2. The T-Tree rates at least 'good' across the board — "the best
    #    choice for an order-preserving index structure ... it performs
    #    uniformly well in all of the tests" — and its update cost is the
    #    best of the order-preserving structures.
    assert all(level(r) <= level("good") for r in ratings["ttree"])
    for other in ("array", "avl", "btree"):
        assert raw["ttree"][1] < raw[other][1]
    # 3. The array's update rating is 'poor'.
    assert ratings["array"][1] == "poor"
    # 4. AVL storage is the worst of the order-preserving structures.
    assert raw["avl"][2] > raw["ttree"][2]
    assert raw["avl"][2] > raw["btree"][2]
    # 5. Linear Hashing updates rate worse than Modified Linear Hashing's.
    assert raw["linear_hash"][1] > raw["modified_linear_hash"][1]
    # 6. The B-Tree searches worse than the T-Tree (fair vs good).
    assert raw["btree"][0] > raw["ttree"][0]


if __name__ == "__main__":
    __, ratings = run_table1()
    for kind, triple in ratings.items():
        print(f"{kind:24s} search={triple[0]:5s} update={triple[1]:5s} "
              f"storage={triple[2]}")
