"""Micro-benchmark: what does a disabled ``count_*`` helper cost?

The paper compiled its Section 3.1 validation counters out for the final
timed runs.  The Python equivalent, ``set_counters_enabled(False)``,
cannot remove the call sites — callers import the helpers by value — so
a disabled helper still costs one function call, one global load, and
one branch.  This benchmark quantifies that residue three ways over the
same workload (a T-Tree build plus a full probe sweep, the counter-
densest paths in the engine):

* ``enabled``  — counters on (the default), ops recorded;
* ``disabled`` — counters off, every helper an early-return no-op;
* series ``calls/sec`` on a bare helper loop, isolating the per-call
  price of ``count_compare`` itself in both states.

The index workload's wall-clock ratio is what a user pays for leaving
counters on; the bare-loop numbers are the honest per-call overhead.
"""

from __future__ import annotations

import time

try:
    from benchmarks.harness import SeriesCollector, scaled
except ImportError:  # pragma: no cover - direct execution
    from harness import SeriesCollector, scaled

from repro.indexes.ttree import TTreeIndex
from repro.instrument import (
    count_compare,
    counters_scope,
    set_counters_enabled,
)

_KEYS = scaled(30_000)  # 3,000 by default
_HELPER_CALLS = scaled(2_000_000)  # 200,000 by default


def _index_workload() -> int:
    """Build a T-Tree of _KEYS keys, then probe every key once."""
    index = TTreeIndex()
    for key in range(_KEYS):
        index.insert(key)
    found = 0
    for key in range(_KEYS):
        if index.search(key) is not None:
            found += 1
    return found


def _timed_index_pass() -> float:
    with counters_scope():
        start = time.perf_counter()
        _index_workload()
        return time.perf_counter() - start


def _timed_helper_loop(calls: int) -> float:
    with counters_scope():
        start = time.perf_counter()
        for __ in range(calls):
            count_compare()
        return time.perf_counter() - start


def run_counter_overhead_benchmark():
    """(series, summary) comparing enabled vs disabled counters."""
    set_counters_enabled(True)
    _timed_index_pass()  # warm-up: import costs, allocator, caches
    enabled_index = _timed_index_pass()
    enabled_loop = _timed_helper_loop(_HELPER_CALLS)
    try:
        set_counters_enabled(False)
        disabled_index = _timed_index_pass()
        disabled_loop = _timed_helper_loop(_HELPER_CALLS)
    finally:
        set_counters_enabled(True)

    series = SeriesCollector(
        f"Counter overhead: T-Tree build+probe of {_KEYS} keys, "
        f"{_HELPER_CALLS} bare count_compare() calls",
        "mode",
        ["index_seconds", "helper_loop_seconds", "ns_per_call"],
    )
    for mode, index_secs, loop_secs in (
        ("enabled", enabled_index, enabled_loop),
        ("disabled", disabled_index, disabled_loop),
    ):
        series.add(
            mode,
            index_seconds=index_secs,
            helper_loop_seconds=loop_secs,
            ns_per_call=loop_secs / _HELPER_CALLS * 1e9,
        )
    summary = {
        "keys": _KEYS,
        "helper_calls": _HELPER_CALLS,
        "index_slowdown_enabled_vs_disabled": round(
            enabled_index / max(disabled_index, 1e-12), 3
        ),
        "helper_call_ratio": round(
            enabled_loop / max(disabled_loop, 1e-12), 3
        ),
    }
    return series, summary


def test_counter_overhead():
    series, summary = run_counter_overhead_benchmark()
    series.publish("counter_overhead", extra=summary)
    # Sanity only — absolute timings vary by machine.  Disabling must
    # never make the instrumented workload dramatically slower.
    assert summary["index_slowdown_enabled_vs_disabled"] > 0.5, summary


if __name__ == "__main__":
    test_counter_overhead()
