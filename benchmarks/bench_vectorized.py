"""Batch engine vs. tuple engine on the Graph-2-style query mix.

The paper's Graph 2 mixes index operations 60/20/20 (search/insert/
delete).  This benchmark lifts that mix one level up, to whole queries
— 60% selections, 20% joins, 20% projections with duplicate
elimination — and runs the identical plan trees through both execution
engines:

* the tuple-at-a-time reference :class:`~repro.query.executor.Executor`;
* the batch-pipelined
  :class:`~repro.query.vectorized.BatchExecutor` (compiled predicates,
  partitioned hash join, dereference-cached keys).

Reported per engine: wall-clock, the Section 3.1 weighted cost, raw
comparison/traversal/hash counts and the batch engine's
``deref_saved_traversals`` (physical dereferences avoided by the
per-operator cache).  The run asserts the acceptance criteria:
identical result rows per query, counter equivalence on every non-hash
path, and a >= 2x wall-clock speedup for the batch engine.
"""

from __future__ import annotations

import time

try:
    from benchmarks.harness import (
        SeriesCollector,
        bench_rng,
        measure,
        scaled,
    )
except ImportError:  # pragma: no cover - direct execution
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro import Field, FieldType, MainMemoryDatabase
from repro.instrument import counters_scope
from repro.query.plan import FilterNode, JoinNode, ProjectNode, ScanNode
from repro.query.predicates import between, eq, ge, gt, le, lt

N_OUTER = scaled(30000)  # 3,000 by default
N_INNER = scaled(3000)  # 300 by default
N_QUERIES = 30  # 18 selections / 6 joins / 6 projections
VALUE_SPACE = 500  # join/dedup columns carry heavy duplicates
TIMING_ROUNDS = 3  # wall-clock is the best of these
REQUIRED_SPEEDUP = 2.0


def build_db() -> MainMemoryDatabase:
    rng = bench_rng()
    db = MainMemoryDatabase()
    db.create_relation(
        "Orders",
        [
            Field("Id", FieldType.INT),
            Field("Qty", FieldType.INT),
            Field("Price", FieldType.INT),
        ],
        primary_key="Id",
    )
    db.create_relation(
        "Parts",
        [Field("Id", FieldType.INT), Field("Qty", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_OUTER):
        db.insert(
            "Orders",
            [i, rng.randrange(VALUE_SPACE), rng.randrange(10_000)],
        )
    for i in range(N_INNER):
        db.insert("Parts", [i, rng.randrange(VALUE_SPACE)])
    return db


def query_mix():
    """The 60/20/20 plan list (identical trees for both engines).

    Joins and duplicate elimination use the *hash* methods — the
    methods the paper itself concludes are superior in memory (and the
    ones a query optimizer over this catalog picks); the sort-based
    variants are exercised by :func:`sort_path_plans` in the
    differential check, where their counter-equivalence is the claim
    (their wall-clock is dominated by the shared instrumented
    quicksort, identical in both engines by construction).
    """
    rng = bench_rng()
    selections = []
    for i in range(18):
        low = rng.randrange(VALUE_SPACE // 2)
        high = low + rng.randrange(50, 200)
        shape = i % 3
        if shape == 0:
            # Conjunctive range scan (compiled cascade vs. AST walk).
            selections.append(
                ScanNode("Orders", gt("Qty", low) & lt("Qty", high))
            )
        elif shape == 1:
            # Disjunctive scan over price bands + BETWEEN.
            selections.append(
                ScanNode(
                    "Orders",
                    between("Qty", low, high)
                    | ge("Price", 9_000)
                    | le("Price", 500),
                )
            )
        else:
            # Explicit Filter node over a bare scan (filter path).
            selections.append(
                FilterNode(
                    ScanNode("Orders"),
                    gt("Price", 1_000) & lt("Price", 9_000) & eq("Qty", low),
                )
            )
    joins = []
    for i in range(6):
        # Predicated outer scan feeding a hash probe — the common
        # select-then-join shape.
        low = rng.randrange(VALUE_SPACE // 2)
        joins.append(
            JoinNode(
                ScanNode("Orders", gt("Qty", low)),
                ScanNode("Parts"),
                "Qty",
                "Qty",
                "hash",
            )
        )
    projections = [
        ProjectNode(
            ScanNode("Orders"),
            ("Qty",),
            deduplicate=True,
            dedup_method="hash",
        )
        for _ in range(6)
    ]
    mix = selections + joins + projections
    assert len(mix) == N_QUERIES
    rng.shuffle(mix)
    return mix


def sort_path_plans():
    """Sort-based join/dedup plans, differential-checked but untimed.

    These paths reuse the paper's instrumented quicksort in both
    engines (the batch engine only swaps in cached key extractors), so
    the interesting property is exact counter equivalence, not
    wall-clock.
    """
    return [
        JoinNode(
            ScanNode("Orders"), ScanNode("Parts"), "Qty", "Qty", "sort_merge"
        ),
        JoinNode(
            ScanNode("Orders"),
            ScanNode("Parts"),
            "Qty",
            "Qty",
            "nested_loops",
        ),
        ProjectNode(
            ScanNode("Orders"),
            ("Qty",),
            deduplicate=True,
            dedup_method="sort_scan",
        ),
    ]


def _uses_hash_kernel(plan) -> bool:
    """Does any node run a batch hash kernel (join or dedup)?

    Those are the two paths outside the strict counter-equivalence
    contract: their counts are elementwise *bounded above* by the tuple
    engine's instead of equal.
    """
    if isinstance(plan, JoinNode):
        if plan.op == "=" and plan.method == "hash":
            return True
        return _uses_hash_kernel(plan.left) or _uses_hash_kernel(plan.right)
    if (
        isinstance(plan, ProjectNode)
        and plan.deduplicate
        and plan.dedup_method == "hash"
    ):
        return True
    child = getattr(plan, "child", None)
    return child is not None and _uses_hash_kernel(child)


def run_mix(db, plans):
    executor = db.executor
    for plan in plans:
        executor.execute(plan)


def differential_check(db, plans):
    """Identical rows per query; counter equivalence off the hash path."""
    checked_equal = 0
    for plan in plans:
        db.configure_execution(engine="tuple")
        with counters_scope() as ct:
            tuple_result = db.executor.execute(plan)
        db.configure_execution(engine="batch")
        with counters_scope() as cb:
            batch_result = db.executor.execute(plan)
        assert tuple_result.rows() == batch_result.rows(), plan
        if not _uses_hash_kernel(plan):
            t = ct.snapshot().as_dict()
            b = cb.snapshot().as_dict()
            b.pop("deref_saved_traversals", None)
            assert t == b, (plan, t, b)
            checked_equal += 1
    return checked_equal


def main() -> None:
    db = build_db()
    plans = query_mix()
    equal_paths = differential_check(db, plans + sort_path_plans())

    series = SeriesCollector(
        f"Batch vs. tuple engine - query mix 60/20/20, "
        f"|Orders|={N_OUTER}, |Parts|={N_INNER}",
        "engine",
        [
            "seconds",
            "cost",
            "comparisons",
            "traversals",
            "hashes",
            "deref_saved",
        ],
    )
    seconds_by_engine = {}
    for engine in ("tuple", "batch"):
        db.configure_execution(engine=engine)
        best = None
        counters = None
        for _ in range(TIMING_ROUNDS):
            _, snap, elapsed = measure(lambda: run_mix(db, plans))
            if best is None or elapsed < best:
                best = elapsed
                counters = snap
        seconds_by_engine[engine] = best
        series.add(
            engine,
            seconds=best,
            cost=counters.weighted_cost(),
            comparisons=counters.comparisons,
            traversals=counters.traversals,
            hashes=counters.hashes,
            deref_saved=counters.extra.get("deref_saved_traversals", 0),
        )

    speedup = seconds_by_engine["tuple"] / seconds_by_engine["batch"]
    series.publish(
        "vectorized_query_mix",
        extra={
            "speedup": round(speedup, 3),
            "required_speedup": REQUIRED_SPEEDUP,
            "queries": N_QUERIES,
            "mix": {"selections": 18, "joins": 6, "projections": 6},
            "differential_checked": N_QUERIES + len(sort_path_plans()),
            "differential_equal_paths": equal_paths,
        },
    )
    checked = N_QUERIES + len(sort_path_plans())
    print(
        f"speedup: {speedup:.2f}x (required >= {REQUIRED_SPEEDUP}x); "
        f"{equal_paths}/{checked} checked plans counter-equivalent "
        f"(rest use hash kernels, bounded above)"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batch engine speedup {speedup:.2f}x below the required "
        f"{REQUIRED_SPEEDUP}x"
    )


if __name__ == "__main__":
    main()
