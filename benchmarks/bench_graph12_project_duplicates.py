"""Graph 12 — Project Test 2: vary duplicate percentage at |R| = 30,000.

"As the number of duplicates increases, the hash table stores fewer
elements (since the duplicates are discarded as they are encountered) ...
Sorting, on the other hand, realizes no such advantage, as it must still
sort the entire list ...  The large number of duplicates does affect the
sort to some degree, however, because the insertion sort has less work to
do when there are many duplicates."
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, measure, scaled
except ImportError:
    from harness import SeriesCollector, bench_rng, measure, scaled

from repro.query.project import project_hash, project_sort_scan
from repro.workloads import DuplicateDistribution, RelationSpec, build_values

N = scaled(30000)
DUP_PERCENTAGES = [0, 25, 50, 75, 90, 99]


def make_column(dup_pct):
    rng = bench_rng()
    spec = RelationSpec(N, float(dup_pct), DuplicateDistribution(None))
    pool = rng.sample(range(N * 100), spec.unique_values())
    return build_values(spec, pool, rng)


def run_graph12() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 12 — Project Test 2: vary duplicate % (|R|={N:,}; "
        "weighted op cost)",
        "dup_pct",
        ["hash", "sort_scan"],
    )
    for dup_pct in DUP_PERCENTAGES:
        values = make_column(dup_pct)
        __, hash_counters, __ = measure(lambda: project_hash(values))
        __, sort_counters, __ = measure(lambda: project_sort_scan(values))
        series.add(
            dup_pct,
            hash=round(hash_counters.weighted_cost()),
            sort_scan=round(sort_counters.weighted_cost()),
        )
    return series


def test_graph12_series():
    series = run_graph12()
    series.publish("graph12_project_duplicates")
    hash_col = series.column("hash")
    sort_col = series.column("sort_scan")
    # Hashing wins everywhere.
    for h, s in zip(hash_col, sort_col):
        assert h < s
    # The hash method gets faster as duplicates increase (fewer stored
    # elements, shorter chains).
    assert hash_col[-1] < hash_col[0]
    # Sorting stays within a narrow band through 90% duplicates — no
    # comparable advantage.  (At 99% our three-way quicksort partition
    # collapses the giant equal runs and dips below the paper's curve; a
    # two-way quicksort would not.  Recorded in EXPERIMENTS.md.)
    through_90 = sort_col[: DUP_PERCENTAGES.index(90) + 1]
    assert max(through_90) < 1.5 * min(through_90)
    # And the gap between the methods widens from 0% to 90% duplicates.
    at_90 = DUP_PERCENTAGES.index(90)
    assert sort_col[at_90] / hash_col[at_90] > sort_col[0] / hash_col[0]


def test_project_duplicates_bench(benchmark):
    values = make_column(50)
    benchmark(lambda: project_hash(values))


if __name__ == "__main__":
    run_graph12().show()
