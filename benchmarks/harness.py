"""Shared benchmark harness for the paper's graphs and tables.

Every ``bench_graphNN_*.py`` module regenerates one figure of the paper's
evaluation: it sweeps the same parameter the paper swept, runs the same
algorithms, and prints the series as an aligned table.  Cost is reported
in two units:

* ``cost`` — the machine-independent weighted operation count
  (:meth:`repro.instrument.OpCounters.weighted_cost`), the primary metric
  (the paper itself validated wall-clock against these counts);
* ``seconds`` — wall-clock, for reference (Python constant factors make
  absolute times incomparable to the paper's VAX numbers, but relative
  shapes hold).

Sizes default to one tenth of the paper's (e.g. 3,000 instead of 30,000
elements) so that ``pytest benchmarks/ --benchmark-only`` completes in
minutes; set ``REPRO_FULL=1`` for the paper's full sizes.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from repro.instrument import OpCounters, counters_scope

#: Set REPRO_FULL=1 to run the paper's original cardinalities.
FULL_SCALE = os.environ.get("REPRO_FULL", "") not in ("", "0")

#: Machine-readable output: ``--json`` on the command line or REPRO_JSON=1.
#: ``publish`` then also writes ``benchmarks/results/BENCH_<name>.json``
#: holding the series points, any extra counters, and wall-clock metadata.
JSON_MODE = "--json" in sys.argv or os.environ.get("REPRO_JSON", "") not in (
    "", "0"
)

#: ``--spans`` or REPRO_SPANS=1: benchmarks that support it embed a
#: per-operator span breakdown (name, kind, counters, rows, wall-clock)
#: under ``spans`` in their BENCH_*.json document.  Implies JSON mode.
SPANS_MODE = "--spans" in sys.argv or os.environ.get(
    "REPRO_SPANS", ""
) not in ("", "0")
JSON_MODE = JSON_MODE or SPANS_MODE

#: Deterministic seed shared by every benchmark.
SEED = 19860528  # SIGMOD'86 was held in late May 1986.


def _engine_arg() -> str:
    """``--engine {tuple,batch,both}`` (or REPRO_ENGINE); default tuple."""
    value = os.environ.get("REPRO_ENGINE", "") or "tuple"
    for i, arg in enumerate(sys.argv):
        if arg == "--engine" and i + 1 < len(sys.argv):
            value = sys.argv[i + 1]
        elif arg.startswith("--engine="):
            value = arg.split("=", 1)[1]
    if value not in ("tuple", "batch", "both"):
        raise SystemExit(
            f"--engine must be tuple, batch or both, got {value!r}"
        )
    return value


#: Execution-engine selection for benchmarks that evaluate plan trees
#: through a MainMemoryDatabase: ``--engine {tuple,batch,both}`` on the
#: command line or REPRO_ENGINE.  ``both`` makes engine-aware
#: benchmarks emit one series per engine into their BENCH_*.json.
ENGINE = _engine_arg()


def _workers_arg() -> Tuple[int, ...]:
    """``--workers N[,M,...]`` (or REPRO_WORKERS); default (1,).

    A comma list makes worker-aware benchmarks sweep one series per
    worker count (mirroring ``--engine both``).
    """
    value = os.environ.get("REPRO_WORKERS", "") or "1"
    for i, arg in enumerate(sys.argv):
        if arg == "--workers" and i + 1 < len(sys.argv):
            value = sys.argv[i + 1]
        elif arg.startswith("--workers="):
            value = arg.split("=", 1)[1]
    try:
        counts = tuple(int(part) for part in value.split(",") if part)
    except ValueError:
        counts = ()
    if not counts or any(n < 1 for n in counts):
        raise SystemExit(
            f"--workers must be a comma list of positive ints, got {value!r}"
        )
    return counts


#: Worker counts this run should cover (``--workers`` / REPRO_WORKERS).
WORKERS = _workers_arg()


def engines() -> Tuple[str, ...]:
    """The engine names this run should cover, in series order."""
    return ("tuple", "batch") if ENGINE == "both" else (ENGINE,)


def configure_engine(
    db: Any,
    engine: str = None,
    workers: int = None,
    morsel_size: int = None,
    pool: str = None,
) -> Any:
    """Apply the selected engine to a database handle and return it.

    ``engine`` overrides the command-line selection (benchmarks looping
    over :func:`engines` pass each name explicitly); ``both`` on a
    single handle falls back to the tuple engine.  ``workers`` > 1
    (only meaningful with the batch engine) enables morsel-driven
    parallelism; ``morsel_size``/``pool`` tune it.
    """
    name = engine if engine is not None else ENGINE
    if name == "both":
        name = "tuple"
    options: Dict[str, Any] = {}
    if workers is not None and name == "batch":
        options["workers"] = workers
        if morsel_size is not None:
            options["morsel_size"] = morsel_size
        if pool is not None:
            options["pool"] = pool
    db.configure_execution(engine=name, **options)
    return db


def scaled(n: int, factor: int = 10) -> int:
    """The paper's size ``n``, scaled down unless REPRO_FULL is set."""
    return n if FULL_SCALE else max(1, n // factor)


def bench_rng() -> random.Random:
    """A fresh deterministic RNG."""
    return random.Random(SEED)


def measure(func: Callable[[], Any]) -> Tuple[Any, OpCounters, float]:
    """Run ``func`` once, returning (result, counters, seconds)."""
    with counters_scope() as counters:
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
    return result, counters.snapshot(), elapsed


def percentile(values: Sequence[float], q: float) -> float:
    """Exact sample quantile (nearest-rank with linear interpolation).

    Benchmarks hold every observed latency in memory, so unlike the
    engine's fixed-bucket histograms the embedded p50/p95/p99 here are
    exact over the sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def latency_percentiles(
    values: Sequence[float], qs: Sequence[float] = (0.5, 0.95, 0.99)
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over one latency sample."""
    out: Dict[str, float] = {}
    for q in qs:
        label = f"{q * 100:g}".replace(".", "_")
        out[f"p{label}"] = percentile(values, q)
    return out


def format_table(
    title: str,
    x_label: str,
    columns: Sequence[str],
    rows: Iterable[Tuple[Any, Sequence[Any]]],
) -> str:
    """Render a paper-style series table.

    ``rows`` yields ``(x_value, [cell per column])``.  Numeric cells are
    shown with thousands separators (counts) or 3 decimals (floats).
    """
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:,.3f}"
        if isinstance(value, int):
            return f"{value:,}"
        return str(value)

    header = [x_label] + list(columns)
    body = [[fmt(x)] + [fmt(c) for c in cells] for x, cells in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str,
    x_label: str,
    columns: Sequence[str],
    rows: Iterable[Tuple[Any, Sequence[Any]]],
) -> None:
    """Print a series table with surrounding blank lines."""
    print()
    print(format_table(title, x_label, columns, rows))
    print()


def crossover_points(
    series_a: Sequence[float], series_b: Sequence[float], xs: Sequence[Any]
) -> List[Any]:
    """X positions where series A and B swap order (shape checking)."""
    points = []
    for i in range(1, len(xs)):
        before = series_a[i - 1] - series_b[i - 1]
        after = series_a[i] - series_b[i]
        if before * after < 0:
            points.append(xs[i])
    return points


class SeriesCollector:
    """Accumulates (x, {column: value}) points and renders them."""

    def __init__(self, title: str, x_label: str, columns: Sequence[str]) -> None:
        self.title = title
        self.x_label = x_label
        self.columns = list(columns)
        self.points: List[Tuple[Any, Dict[str, Any]]] = []

    def add(self, x: Any, **values: Any) -> None:
        """Record one x position's cells (keyword per column)."""
        self.points.append((x, values))

    def column(self, name: str) -> List[Any]:
        """One column's series, in insertion order."""
        return [values.get(name) for __, values in self.points]

    def xs(self) -> List[Any]:
        """The x positions."""
        return [x for x, __ in self.points]

    def rows(self) -> List[Tuple[Any, List[Any]]]:
        return [
            (x, [values.get(c, "") for c in self.columns])
            for x, values in self.points
        ]

    def show(self) -> None:
        print_table(self.title, self.x_label, self.columns, self.rows())

    def render(self) -> str:
        return format_table(self.title, self.x_label, self.columns, self.rows())

    def publish(
        self,
        name: str,
        extra: Dict[str, Any] = None,
        spans: List[Dict[str, Any]] = None,
        config: Dict[str, Any] = None,
        latencies: Dict[str, Sequence[float]] = None,
    ) -> None:
        """Print the table and save it under benchmarks/results/.

        pytest captures stdout by default; the saved file preserves the
        regenerated series either way.  In JSON mode (``--json`` or
        ``REPRO_JSON=1``) a machine-readable ``BENCH_<name>.json`` is
        written alongside, carrying the series points plus any ``extra``
        payload (e.g. raw counter dicts).  ``spans`` (typically gathered
        via :func:`serialize_spans` when :data:`SPANS_MODE` is on) embeds
        a per-operator breakdown in the document.  ``config`` overrides
        the recorded engine/worker configuration (defaults to this run's
        ``--engine``/``--workers`` selection); the regression gate only
        compares documents whose configurations match.  ``latencies``
        maps a series label to its raw wall-clock sample; each sample is
        embedded as exact p50/p95/p99 under the document's
        ``percentiles`` key (wall-clock, so informational only — the
        regression gate ignores it).
        """
        text = self.render()
        print()
        print(text)
        print()
        save_result(name, text)
        if JSON_MODE:
            save_result_json(name, self, extra, spans, config, latencies)


def save_result(name: str, text: str) -> str:
    """Write a rendered table to ``benchmarks/results/<name>.txt``."""
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def run_config() -> Dict[str, Any]:
    """This run's engine/worker selection, as recorded in documents."""
    return {"engine": ENGINE, "workers": list(WORKERS)}


def save_result_json(
    name: str,
    series: "SeriesCollector",
    extra: Dict[str, Any] = None,
    spans: List[Dict[str, Any]] = None,
    config: Dict[str, Any] = None,
    latencies: Dict[str, Sequence[float]] = None,
) -> str:
    """Write ``benchmarks/results/BENCH_<name>.json``.

    The document is self-describing: series name, axis labels, the
    points as ``{x, values}`` records, the engine/worker ``config`` the
    series was measured under (so the regression gate never compares
    baselines from different configurations), wall-clock/timestamp
    metadata, and whatever the caller adds under ``extra``.  ``spans``
    embeds a per-operator span breakdown (see :func:`serialize_spans`);
    ``latencies`` embeds exact per-series p50/p95/p99 under
    ``percentiles``.
    """
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"BENCH_{name}.json")
    document = {
        "name": name,
        "title": series.title,
        "x_label": series.x_label,
        "columns": series.columns,
        "points": [
            {"x": x, "values": values} for x, values in series.points
        ],
        "config": config if config is not None else run_config(),
        "full_scale": FULL_SCALE,
        "seed": SEED,
        "unix_time": time.time(),
    }
    if extra:
        document["extra"] = extra
    if spans:
        document["spans"] = spans
    if latencies:
        document["percentiles"] = {
            label: dict(
                latency_percentiles(sample), count=len(sample)
            )
            for label, sample in latencies.items()
            if sample
        }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=str)
        handle.write("\n")
    return path


def serialize_spans(roots: Iterable[Any]) -> List[Dict[str, Any]]:
    """Root :class:`~repro.obs.Span` objects → JSON-ready dicts."""
    return [root.to_dict() for root in roots]
