"""Graph 9 — Join Test 6: vary semijoin selectivity.

|R1| = |R2| = 30,000, 50% duplicates uniform ("roughly two occurrences of
each join column value in each relation"), selectivity 1-100%.

"The Tree Join was affected the most by the increase in matching values"
(unsuccessful searches skip the bidirectional scan phase); the Hash Join
rises for the same reason but less steeply; Tree Merge rises mostly from
"the extra overhead of recording the increasing number of matching
tuples"; and "Sort Merge is less affected ... because the sorting time
overshadows the time required to perform the actual merge join".
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
    from benchmarks.join_common import JOIN_METHODS, run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled
    from join_common import JOIN_METHODS, run_join_methods

from repro.workloads import DuplicateDistribution, RelationSpec, build_join_pair

N = scaled(30000)
SELECTIVITIES = [1, 25, 50, 75, 100]


def make_pair(selectivity):
    dist = DuplicateDistribution(None)
    spec = RelationSpec(N, 50.0, dist)
    return build_join_pair(spec, spec, float(selectivity), bench_rng())


def run_graph9() -> SeriesCollector:
    series = SeriesCollector(
        f"Graph 9 — Join Test 6: vary semijoin selectivity "
        f"(|R|={N:,}, 50% dups uniform; weighted op cost)",
        "selectivity_pct",
        JOIN_METHODS + ["result_size"],
    )
    for selectivity in SELECTIVITIES:
        pair = make_pair(selectivity)
        stats = run_join_methods(pair.outer, pair.inner)
        cells = {m: round(stats[m]["cost"]) for m in JOIN_METHODS}
        cells["result_size"] = stats["hash_join"]["results"]
        series.add(selectivity, **cells)
    return series


def absolute_rise(column):
    return column[-1] - column[0]


def test_graph09_series():
    series = run_graph9()
    series.publish("graph09_join_semijoin")
    tj_rise = absolute_rise(series.column("tree_join"))
    hj_rise = absolute_rise(series.column("hash_join"))
    tm_rise = absolute_rise(series.column("tree_merge"))
    sm = series.column("sort_merge")
    # The Tree Join's curve climbs the most as selectivity rises (the
    # paper compares the graphs' absolute slopes).
    assert tj_rise > hj_rise
    assert tj_rise > tm_rise
    # Sort Merge is the least affected in *relative* terms: "the sorting
    # time overshadows the time required to perform the actual merge".
    assert max(sm) < 1.25 * min(sm)
    # The result size tracks selectivity.
    sizes = series.column("result_size")
    assert sizes[0] < sizes[-1]


def test_join_semijoin_bench(benchmark):
    pair = make_pair(50)
    benchmark.pedantic(
        lambda: run_join_methods(pair.outer, pair.inner, ["tree_join"]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph9().show()
