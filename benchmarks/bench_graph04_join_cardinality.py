"""Graph 4 — Join Test 1: vary cardinality with |R1| = |R2|.

Keys only (0% duplicates), 100% semijoin selectivity.  Expected shape:
Tree Merge best (indexes pre-exist, ~|R1| + 2|R2| comparisons), Hash Join
next (build + fixed-cost probes), Tree Join above it (log2|R2| per
probe), Sort Merge worst (pays both sorts).
"""

import pytest

try:
    from benchmarks.harness import SeriesCollector, bench_rng, scaled
    from benchmarks.join_common import JOIN_METHODS, run_join_methods
except ImportError:
    from harness import SeriesCollector, bench_rng, scaled
    from join_common import JOIN_METHODS, run_join_methods

from repro.workloads import RelationSpec, build_join_pair

#: The paper sweeps up to 30,000 tuples per relation.
CARDINALITIES = [scaled(n) for n in (3750, 7500, 15000, 22500, 30000)]


def make_pair(n):
    return build_join_pair(
        RelationSpec(n), RelationSpec(n), 100.0, bench_rng()
    )


def run_graph4() -> SeriesCollector:
    series = SeriesCollector(
        "Graph 4 — Join Test 1: |R1| = |R2| (0% dups, 100% selectivity; "
        "weighted op cost)",
        "tuples",
        JOIN_METHODS,
    )
    for n in CARDINALITIES:
        pair = make_pair(n)
        stats = run_join_methods(pair.outer, pair.inner)
        series.add(
            n, **{m: round(stats[m]["cost"]) for m in JOIN_METHODS}
        )
    return series


def test_graph04_series():
    series = run_graph4()
    series.publish("graph04_join_cardinality")
    for i in range(len(CARDINALITIES)):
        tm = series.column("tree_merge")[i]
        hj = series.column("hash_join")[i]
        tj = series.column("tree_join")[i]
        sm = series.column("sort_merge")[i]
        # "If both indices are available, then a Tree Merge gives the best
        # performance."
        assert tm < hj < tj, (tm, hj, tj)
        # "The Sort Merge algorithm has the worst performance ... in this
        # test."
        assert sm > hj
        assert sm > tm
    # Every method scales roughly linearly/log-linearly, no blow-ups: the
    # largest size costs less than 20x the smallest (sizes differ by 8x).
    for method in JOIN_METHODS:
        col = series.column(method)
        assert col[-1] < 20 * col[0]


@pytest.mark.parametrize("method", JOIN_METHODS)
def test_join_cardinality_bench(benchmark, method):
    pair = make_pair(scaled(15000))
    benchmark.pedantic(
        lambda: run_join_methods(pair.outer, pair.inner, [method]),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    run_graph4().show()
