"""CI perf-regression gate over the machine-independent op counts.

Compares freshly regenerated ``BENCH_*.json`` documents against the
committed baselines and fails (exit 1) when any *operation-count* value
regresses by more than the tolerance (default 2%).  Wall-clock columns
are reported but never gate: the op counts are the paper's
machine-independent cost model, stable across hardware, while seconds
are not.

Usage::

    python benchmarks/check_regression.py --baseline <dir> [--fresh <dir>]
        [--tolerance 0.02]

Typical CI flow: copy the committed ``benchmarks/results`` somewhere
first, rerun the benchmarks (which overwrite ``benchmarks/results``),
then point ``--baseline`` at the copy.  Benchmarks present only on one
side are skipped with a note (new benchmarks shouldn't fail the gate);
*lower* counts than baseline are improvements and pass.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Any, Dict, Iterator, List, Tuple

#: Column/value names that carry wall-clock (or derived-from-wall-clock)
#: measurements — reported, never gating.  Percentile/quantile fields
#: (the harness's embedded p50/p95/p99 latency summaries) are wall-clock
#: derived too; the top-level ``percentiles`` document key is never
#: flattened, but per-point columns could carry the same names.
_WALL_CLOCK = re.compile(
    r"(seconds|_ns$|^ns_|time|wall|speedup|ratio"
    r"|(^|_)p\d+(_\d+)?($|_)|percentile|quantile)",
    re.IGNORECASE,
)

#: Counts below this floor are ignored: tiny absolute values make the
#: relative tolerance meaninglessly twitchy.
MIN_GATED_VALUE = 100


def _is_gated(name: str, value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and not _WALL_CLOCK.search(name)
        and value >= MIN_GATED_VALUE
    )


def _flatten(
    document: Dict[str, Any]
) -> Iterator[Tuple[str, str, float]]:
    """Yield ``(point_label, value_name, value)`` for every gated value."""
    for point in document.get("points", []):
        label = str(point.get("x"))
        for name, value in (point.get("values") or {}).items():
            if _is_gated(name, value):
                yield label, name, float(value)
    extra = document.get("extra") or {}
    for name, value in extra.items():
        if isinstance(value, dict):
            for sub, sub_value in value.items():
                if _is_gated(f"{name}.{sub}", sub_value):
                    yield "extra", f"{name}.{sub}", float(sub_value)
        elif _is_gated(name, value):
            yield "extra", name, float(value)


def _load(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def compare(
    baseline_dir: str, fresh_dir: str, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes)."""
    regressions: List[str] = []
    notes: List[str] = []
    baseline_files = {
        name
        for name in os.listdir(baseline_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    }
    fresh_files = {
        name
        for name in os.listdir(fresh_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    }
    for name in sorted(baseline_files - fresh_files):
        notes.append(f"{name}: present in baseline only, skipped")
    for name in sorted(fresh_files - baseline_files):
        notes.append(f"{name}: new benchmark (no baseline), skipped")
    for name in sorted(baseline_files & fresh_files):
        base_doc = _load(os.path.join(baseline_dir, name))
        fresh_doc = _load(os.path.join(fresh_dir, name))
        base_config = base_doc.get("config")
        fresh_config = fresh_doc.get("config")
        if base_config != fresh_config:
            # Op counts are only comparable between identical
            # engine/worker configurations; a mismatch means the runs
            # measured different things, so comparing them would either
            # false-alarm or (worse) vacuously pass.  Skip loudly.
            notes.append(
                f"{name}: config mismatch (baseline {base_config!r} vs "
                f"fresh {fresh_config!r}), skipped"
            )
            continue
        base = dict(
            ((label, key), value)
            for label, key, value in _flatten(base_doc)
        )
        fresh = dict(
            ((label, key), value)
            for label, key, value in _flatten(fresh_doc)
        )
        missing = sorted(base.keys() - fresh.keys())
        if missing:
            label, column = missing[0]
            notes.append(
                f"{name}: {len(missing)} baseline value(s) absent from "
                f"the fresh run (first: [{label}] {column})"
            )
        for key in sorted(base.keys() & fresh.keys()):
            before, after = base[key], fresh[key]
            if after > before * (1.0 + tolerance):
                label, column = key
                regressions.append(
                    f"{name} [{label}] {column}: "
                    f"{before:,.0f} -> {after:,.0f} "
                    f"(+{(after / before - 1.0) * 100:.2f}%)"
                )
    return regressions, notes


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        required=True,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh",
        default=os.path.join(os.path.dirname(__file__), "results"),
        help="directory holding freshly regenerated BENCH_*.json "
        "(default: benchmarks/results)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="allowed relative op-count growth (default 0.02 = 2%%)",
    )
    args = parser.parse_args(argv)
    regressions, notes = compare(
        args.baseline, args.fresh, args.tolerance
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(
            f"FAIL: {len(regressions)} op-count regression(s) beyond "
            f"{args.tolerance:.0%}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print(
        f"OK: no op-count regressions beyond {args.tolerance:.0%} "
        f"(wall-clock columns are informational only)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
